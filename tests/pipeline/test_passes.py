"""The composable pass pipeline: registry, escalation, diagnostics."""

import pytest

from repro.machine.config import parse_config
from repro.pipeline.driver import (
    CompileError,
    Scheme,
    UnschedulableError,
    compile_loop,
)
from repro.pipeline.passes import (
    BaselinePlanPass,
    JumpEscalation,
    LinearEscalation,
    Pass,
    ReplicatePlanPass,
    SchemeConfig,
    StageFailure,
    standard_stack,
    build_pass_stack,
    register_scheme,
    run_pass_pipeline,
    scheme_names,
    unregister_scheme,
)
from repro.schedule.scheduler import FailureCause, ScheduleFailure
from repro.schedule.scheduler import schedule as real_schedule
from repro.sim.verifier import verify_kernel
from repro.workloads.patterns import daxpy, stencil5


@pytest.fixture
def m2():
    return parse_config("2c1b2l64r")


class TestRegistry:
    def test_builtin_schemes_registered(self):
        names = scheme_names()
        for scheme in Scheme:
            assert scheme.value in names

    def test_unknown_scheme_is_a_compile_error(self, m2):
        with pytest.raises(CompileError, match="unknown scheme"):
            run_pass_pipeline(daxpy(), m2, "no_such_scheme")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheme(
                "baseline", lambda config: standard_stack(BaselinePlanPass(), config)
            )

    def test_replace_allows_override(self):
        builder = lambda config: standard_stack(BaselinePlanPass(), config)
        register_scheme("tmp_scheme", builder)
        try:
            register_scheme("tmp_scheme", builder, replace=True)
        finally:
            unregister_scheme("tmp_scheme")

    def test_stack_shape_matches_config(self):
        plain = [p.name for p in build_pass_stack("replication", SchemeConfig())]
        assert plain == ["partition", "feasibility", "replicate", "place",
                         "schedule"]
        with_length = [
            p.name
            for p in build_pass_stack(
                "replication", SchemeConfig(length_replication=True)
            )
        ]
        assert with_length == ["partition", "feasibility", "replicate",
                               "length", "place", "schedule"]

    def test_concrete_passes_satisfy_protocol(self):
        for stage in build_pass_stack("replication", SchemeConfig()):
            assert isinstance(stage, Pass)


class _ReplicationOffAbovePass:
    """Toy planning pass: replicate at small IIs, give up above a cap."""

    name = "plan"

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self._replicate = ReplicatePlanPass()
        self._baseline = BaselinePlanPass()

    def run(self, ctx) -> None:
        if ctx.ii <= self.threshold:
            self._replicate.run(ctx)
        else:
            self._baseline.run(ctx)


class TestCustomScheme:
    """A new scheme compiles end-to-end without editing driver.py."""

    @pytest.fixture
    def toy(self):
        name = "toy_replication_off_above_ii"
        register_scheme(
            name,
            lambda config: standard_stack(_ReplicationOffAbovePass(8), config),
        )
        yield name
        unregister_scheme(name)

    def test_compiles_and_verifies(self, toy, m2):
        result = run_pass_pipeline(stencil5(), m2, toy)
        verify_kernel(result.kernel)
        assert result.scheme == toy
        assert result.scheme_name == toy

    def test_reachable_through_compile_loop(self, toy, m2):
        result = compile_loop(stencil5(), m2, scheme=toy)
        verify_kernel(result.kernel)
        assert result.scheme == toy

    def test_behaves_like_replication_below_threshold(self, toy, m2):
        ours = run_pass_pipeline(stencil5(), m2, toy)
        repl = compile_loop(stencil5(), m2, scheme=Scheme.REPLICATION)
        assert ours.ii == repl.ii
        assert ours.kernel.n_copy_ops() == repl.kernel.n_copy_ops()

    def test_runs_through_the_engine(self, toy, m2):
        from repro.engine.jobs import CompileJob, run_job

        job = CompileJob(ddg=stencil5(), machine="2c1b2l64r", scheme=toy)
        enum_job = CompileJob(
            ddg=stencil5(), machine="2c1b2l64r", scheme=Scheme.REPLICATION
        )
        assert job.content_hash() != enum_job.content_hash()
        result = run_job(job)
        assert result.ok
        assert result.result.scheme == toy


class TestSchemeConfigParity:
    def test_kwargs_fold_into_config(self, m2):
        via_kwargs = compile_loop(
            stencil5(),
            m2,
            scheme=Scheme.REPLICATION,
            length_replication=True,
            copy_latency_override=0,
        )
        via_config = run_pass_pipeline(
            stencil5(),
            m2,
            Scheme.REPLICATION,
            config=SchemeConfig(length_replication=True, copy_latency_override=0),
        )
        assert via_kwargs.ii == via_config.ii
        assert via_kwargs.kernel.copy_latency_override == 0
        assert via_config.kernel.copy_latency_override == 0


class TestMergeCounters:
    def test_stage_prefix_keeps_same_named_counters_apart(self):
        """Regression: two passes reporting ``attempts`` must not clobber."""
        from repro.pipeline.driver import CompileDiagnostics

        diag = CompileDiagnostics()
        diag.merge_counters({"attempts": 3.0}, stage="partition")
        diag.merge_counters({"attempts": 7.0}, stage="schedule")
        assert diag.counters == {
            "partition.attempts": 3.0,
            "schedule.attempts": 7.0,
        }

    def test_already_namespaced_names_are_not_double_prefixed(self):
        from repro.pipeline.driver import CompileDiagnostics

        diag = CompileDiagnostics()
        diag.merge_counters({"partition.moves": 5.0}, stage="partition")
        assert diag.counters == {"partition.moves": 5.0}

    def test_without_stage_names_pass_through(self):
        from repro.pipeline.driver import CompileDiagnostics

        diag = CompileDiagnostics()
        diag.merge_counters({"partition.x": 1.0})
        assert diag.counters == {"partition.x": 1.0}


class TestDiagnostics:
    def test_stage_times_and_counts_recorded(self, m2):
        result = compile_loop(stencil5(), m2, scheme=Scheme.REPLICATION)
        diag = result.diagnostics
        assert diag is not None
        assert set(diag.stage_seconds) <= {
            "partition", "feasibility", "replicate", "place", "schedule"
        }
        assert "partition" in diag.stage_seconds
        assert diag.partition_attempts == len(diag.ii_trajectory)
        assert diag.schedule_attempts >= 1
        assert all(s >= 0.0 for s in diag.stage_seconds.values())

    def test_trajectory_starts_at_mii_and_ends_at_ii(self, m2):
        result = compile_loop(stencil5(), m2, scheme=Scheme.BASELINE)
        trajectory = result.diagnostics.ii_trajectory
        assert trajectory[0] == result.mii
        assert trajectory[-1] == result.ii
        assert trajectory == sorted(set(trajectory))  # strictly increasing

    def test_to_dict_is_json_ready(self, m2):
        import json

        result = compile_loop(daxpy(), m2, scheme=Scheme.BASELINE)
        payload = result.diagnostics.to_dict()
        json.dumps(payload)
        assert payload["ii_trajectory"] == result.diagnostics.ii_trajectory
        assert payload["total_seconds"] >= 0.0


class TestEscalationPolicies:
    def test_linear_always_steps_by_one(self):
        failure = ScheduleFailure(FailureCause.REGISTERS, "x", suggested_ii=99)
        assert LinearEscalation().next_ii(5, failure) == 6

    def test_jump_follows_suggestion(self):
        failure = ScheduleFailure(FailureCause.REGISTERS, "x", suggested_ii=9)
        assert JumpEscalation().next_ii(5, failure) == 9

    def test_jump_caps_at_factor_times_ii(self):
        failure = ScheduleFailure(FailureCause.REGISTERS, "x", suggested_ii=1000)
        assert JumpEscalation().next_ii(5, failure) == 20
        assert JumpEscalation(cap_factor=2).next_ii(5, failure) == 10

    def test_jump_ignores_stale_suggestion(self):
        failure = ScheduleFailure(FailureCause.REGISTERS, "x", suggested_ii=4)
        assert JumpEscalation().next_ii(5, failure) == 6

    def test_jump_without_suggestion_steps_by_one(self):
        failure = StageFailure(FailureCause.BUS, "no estimate")
        assert JumpEscalation().next_ii(5, failure) == 6


class TestIIJumpInCompileLoop:
    """Satellite: the suggested-II jump behaviour of the Fig. 2 loop."""

    def _compile_with_forced_failures(self, monkeypatch, m2, failures):
        """Make the first len(failures) schedule calls raise, then defer
        to the real scheduler; returns the compile result."""
        remaining = list(failures)

        def flaky_schedule(graph, machine, ii, **kwargs):
            if remaining:
                raise remaining.pop(0)
            return real_schedule(graph, machine, ii, **kwargs)

        monkeypatch.setattr(
            "repro.pipeline.passes.schedule", flaky_schedule
        )
        return compile_loop(stencil5(), m2, scheme=Scheme.BASELINE)

    def test_jump_is_capped_at_4x(self, monkeypatch, m2):
        result = self._compile_with_forced_failures(
            monkeypatch,
            m2,
            [ScheduleFailure(FailureCause.REGISTERS, "f", suggested_ii=1000)],
        )
        trajectory = result.diagnostics.ii_trajectory
        # The attempt after the forced failure sits at exactly 4x the II
        # where the scheduler failed, not at the (huge) suggestion.
        jumps = [
            (a, b) for a, b in zip(trajectory, trajectory[1:]) if b > a + 1
        ]
        assert len(jumps) == 1
        failing_ii, landed_ii = jumps[0]
        assert landed_ii == 4 * failing_ii
        assert 1000 not in trajectory

    def test_exactly_one_cause_per_jump(self, monkeypatch, m2):
        result = self._compile_with_forced_failures(
            monkeypatch,
            m2,
            [
                ScheduleFailure(FailureCause.REGISTERS, "a", suggested_ii=1000),
                ScheduleFailure(FailureCause.RECURRENCES, "b", suggested_ii=1000),
            ],
        )
        # However far each jump travelled, each failure recorded exactly
        # one cause — so causes appear once, in failure order.
        assert result.causes.count(FailureCause.REGISTERS) == 1
        assert result.causes.count(FailureCause.RECURRENCES) == 1
        regs = result.causes.index(FailureCause.REGISTERS)
        recs = result.causes.index(FailureCause.RECURRENCES)
        assert regs < recs

    def test_trajectory_is_strictly_monotone_under_jumps(self, monkeypatch, m2):
        result = self._compile_with_forced_failures(
            monkeypatch,
            m2,
            [
                ScheduleFailure(FailureCause.REGISTERS, "a", suggested_ii=7),
                ScheduleFailure(FailureCause.REGISTERS, "b", suggested_ii=3),
                ScheduleFailure(FailureCause.REGISTERS, "c"),
            ],
        )
        trajectory = result.diagnostics.ii_trajectory
        assert all(b > a for a, b in zip(trajectory, trajectory[1:]))
        assert result.ii == trajectory[-1]

    def test_stale_suggestion_still_advances(self, monkeypatch, m2):
        result = self._compile_with_forced_failures(
            monkeypatch,
            m2,
            [ScheduleFailure(FailureCause.REGISTERS, "f", suggested_ii=1)],
        )
        trajectory = result.diagnostics.ii_trajectory
        assert all(b > a for a, b in zip(trajectory, trajectory[1:]))


class TestErrorTaxonomy:
    def test_exhaustion_raises_unschedulable(self, m2):
        with pytest.raises(UnschedulableError):
            compile_loop(daxpy(), m2, scheme=Scheme.BASELINE, max_ii=1)

    def test_empty_loop_is_not_unschedulable(self, m2):
        from repro.ddg.graph import Ddg

        with pytest.raises(CompileError) as excinfo:
            compile_loop(Ddg("empty"), m2)
        assert not isinstance(excinfo.value, UnschedulableError)

    def test_unschedulable_is_a_compile_error(self):
        assert issubclass(UnschedulableError, CompileError)
