"""Experiment cache keys must distinguish every compile flag."""

import pytest

from repro.pipeline import experiments
from repro.pipeline.driver import Scheme


@pytest.fixture(autouse=True)
def fresh_cache():
    experiments.clear_cache()
    yield
    experiments.clear_cache()


class TestCacheKeys:
    def test_copy_latency_override_is_keyed(self):
        machine = experiments.machine_for("2c1b2l64r")
        normal = experiments.compile_suite(
            "swim", machine, Scheme.REPLICATION, limit=2
        )
        bound = experiments.compile_suite(
            "swim", machine, Scheme.REPLICATION, limit=2,
            copy_latency_override=0,
        )
        assert normal is not bound
        # The zero-latency bound can only shorten schedules.
        for n, b in zip(normal, bound):
            assert b.result.kernel.length <= n.result.kernel.length

    def test_length_replication_is_keyed(self):
        machine = experiments.machine_for("2c1b2l64r")
        plain = experiments.compile_suite(
            "applu", machine, Scheme.REPLICATION, limit=2
        )
        extended = experiments.compile_suite(
            "applu", machine, Scheme.REPLICATION, limit=2,
            length_replication=True,
        )
        assert plain is not extended

    def test_limits_are_keyed(self):
        machine = experiments.machine_for("2c1b2l64r")
        two = experiments.compile_suite("mgrid", machine, Scheme.BASELINE, limit=2)
        three = experiments.compile_suite("mgrid", machine, Scheme.BASELINE, limit=3)
        assert len(two) == 2
        assert len(three) == 3

    def test_machines_keyed_by_name(self):
        a = experiments.compile_suite(
            "mgrid", experiments.machine_for("2c1b2l64r"), Scheme.BASELINE, limit=1
        )
        b = experiments.compile_suite(
            "mgrid", experiments.machine_for("2c1b2l32r"), Scheme.BASELINE, limit=1
        )
        assert a is not b
