"""Text table rendering."""

from repro.pipeline.report import format_table


class TestFormatTable:
    def test_headers_and_rows(self):
        text = format_table(
            ["bench", "ipc"], [["swim", 3.14159], ["mgrid", 2]], title="Fig"
        )
        lines = text.splitlines()
        assert lines[0] == "Fig"
        assert "bench" in lines[2]
        assert "3.14" in text
        assert "mgrid" in text

    def test_numbers_right_aligned(self):
        text = format_table(["name", "value"], [["x", 1], ["longer", 22]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith(" 1")
        assert rows[1].endswith("22")

    def test_no_title(self):
        text = format_table(["a"], [["b"]])
        assert text.splitlines()[0] == "a"

    def test_width_adapts_to_cells(self):
        text = format_table(["h"], [["very-long-cell"]])
        assert "very-long-cell" in text
