"""Bench regression gating: parity passes, injected regressions fail."""

import copy

from repro.pipeline.regression import NOISE_FLOOR_SECONDS, compare_bench


def _payload() -> dict:
    return {
        "cells": [
            {
                "benchmark": "tomcatv",
                "machine": "4c1b2l64r",
                "scheme": "baseline",
                "loops": 4,
                "ok": 4,
                "failed": 0,
                "timeout": 0,
                "ipc": 4.34,
            },
            {
                "benchmark": "tomcatv",
                "machine": "4c1b2l64r",
                "scheme": "replication",
                "loops": 4,
                "ok": 4,
                "failed": 0,
                "timeout": 0,
                "ipc": 5.10,
            },
        ],
        "stages": {
            "partition": {"seconds": 1.0, "p50_seconds": 0.005},
            "schedule": {"seconds": 0.25, "p50_seconds": 0.001},
            "feasibility": {"seconds": 0.001, "p50_seconds": 0.0001},
        },
        "counters": {"partition.moves_applied": 1000.0},
        "elapsed_seconds": 1.5,
        "jobs": 8,
    }


class TestParity:
    def test_identical_payloads_pass(self):
        report = compare_bench(_payload(), _payload(), tolerance=0.2)
        assert report.ok
        assert report.regressions == []

    def test_small_swings_within_tolerance_pass(self):
        current = _payload()
        current["stages"]["partition"]["seconds"] = 1.1  # +10% < 20%
        current["cells"][0]["ipc"] = 4.0  # -8% < 20%
        report = compare_bench(current, _payload(), tolerance=0.2)
        assert report.ok

    def test_improvements_pass(self):
        current = _payload()
        current["stages"]["partition"]["seconds"] = 0.5
        current["cells"][0]["ipc"] = 9.0
        assert compare_bench(current, _payload(), tolerance=0.2).ok


class TestRegressions:
    def test_ok_count_drop_always_fails(self):
        current = _payload()
        current["cells"][0]["ok"] = 3
        current["cells"][0]["failed"] = 1
        report = compare_bench(current, _payload(), tolerance=0.9)
        assert not report.ok
        names = {delta.name for delta in report.regressions}
        assert "tomcatv/4c1b2l64r/baseline.ok" in names
        assert "tomcatv/4c1b2l64r/baseline.failed" in names

    def test_timeout_increase_fails(self):
        current = _payload()
        current["cells"][1]["timeout"] = 2
        assert not compare_bench(current, _payload(), tolerance=0.9).ok

    def test_missing_cell_fails(self):
        current = _payload()
        del current["cells"][1]
        report = compare_bench(current, _payload(), tolerance=0.2)
        assert not report.ok
        assert any(
            "missing" in delta.note for delta in report.regressions
        )

    def test_ipc_drop_beyond_tolerance_fails(self):
        current = _payload()
        current["cells"][0]["ipc"] = 4.34 * 0.7  # -30% > 20%
        report = compare_bench(current, _payload(), tolerance=0.2)
        assert not report.ok
        assert any(delta.kind == "ipc" for delta in report.regressions)

    def test_stage_slowdown_beyond_tolerance_fails(self):
        current = _payload()
        current["stages"]["partition"]["seconds"] = 1.5  # +50%, +500ms
        report = compare_bench(current, _payload(), tolerance=0.2)
        assert not report.ok
        assert any(
            delta.name == "partition.seconds" for delta in report.regressions
        )

    def test_sub_noise_floor_slowdown_passes(self):
        current = _payload()
        # 5x slower relatively, but only 4ms absolute — runner noise.
        base = _payload()
        base["stages"]["feasibility"]["seconds"] = 0.001
        current["stages"]["feasibility"]["seconds"] = (
            0.001 + NOISE_FLOOR_SECONDS * 0.8
        )
        assert compare_bench(current, base, tolerance=0.2).ok


class TestInformational:
    def test_counters_never_gate(self):
        current = _payload()
        current["counters"]["partition.moves_applied"] = 1e9
        report = compare_bench(current, _payload(), tolerance=0.2)
        assert report.ok
        assert any(delta.kind == "counter" for delta in report.deltas)

    def test_elapsed_never_gates(self):
        current = _payload()
        current["elapsed_seconds"] = 100.0
        assert compare_bench(current, _payload(), tolerance=0.2).ok

    def test_vanished_stage_is_reported_not_gated(self):
        current = _payload()
        del current["stages"]["schedule"]
        report = compare_bench(current, _payload(), tolerance=0.2)
        assert report.ok
        assert any("absent" in delta.note for delta in report.deltas)


class TestTable:
    def test_table_lists_regressions_first(self):
        current = copy.deepcopy(_payload())
        current["cells"][0]["ok"] = 0
        current["cells"][0]["failed"] = 4
        report = compare_bench(current, _payload(), tolerance=0.2)
        text = report.table()
        assert "REGRESSION" in text
        first_data_line = text.splitlines()[4]
        assert first_data_line.startswith("REGRESSION")

    def test_parity_table_is_renderable(self):
        report = compare_bench(_payload(), _payload(), tolerance=0.2)
        assert "0 regression(s)" in report.table()
