"""The installation self-check."""

from repro.pipeline.validation import SelfCheckReport, self_check


class TestSelfCheck:
    def test_runs_green_and_counts(self):
        report = self_check()
        assert report.loops_compiled >= 20
        assert report.kernels_verified == report.loops_compiled
        assert report.iterations_simulated > 0
        assert report.programs_diffed >= report.loops_compiled - 1
        assert report.clusters_allocated > 0

    def test_summary_mentions_everything(self):
        report = SelfCheckReport(
            loops_compiled=1,
            kernels_verified=2,
            iterations_simulated=3,
            programs_diffed=4,
            clusters_allocated=5,
        )
        text = report.summary()
        for token in ("1", "2", "3", "4", "5"):
            assert token in text
