"""Hand-shaped pattern loops."""


from repro.ddg.analysis import rec_mii
from repro.machine.resources import FuKind, OpClass
from repro.workloads.patterns import (
    daxpy,
    dot_product,
    figure3_graph,
    figure3_partition,
    stencil5,
)


class TestPatterns:
    def test_daxpy_shape(self):
        g = daxpy()
        assert len(g) == 8
        counts = g.op_counts()
        assert counts[FuKind.MEM] == 3  # two loads + one store

    def test_stencil_has_five_loads(self):
        g = stencil5()
        loads = [n for n in g.nodes() if n.op_class is OpClass.LOAD]
        assert len(loads) == 5

    def test_dot_product_recurrence(self):
        g = dot_product()
        # FP accumulate: latency 3 over distance 1.
        assert rec_mii(g) == 3

    def test_figure3_node_count(self):
        g = figure3_graph()
        assert len(g) == 14

    def test_figure3_partition_covers_graph(self):
        g = figure3_graph()
        mapping = figure3_partition()
        assert set(mapping) == {n.name for n in g.nodes()}
        assert set(mapping.values()) == {0, 1, 2, 3}
