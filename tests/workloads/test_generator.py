"""The synthetic loop generator."""

import random

import pytest

from repro.ddg.analysis import rec_mii
from repro.machine.resources import FuKind
from repro.workloads.generator import LoopSpec, generate_loop, generate_suite
from repro.workloads.loop import Loop


@pytest.fixture
def spec():
    return LoopSpec(name="test", trip_range=(10, 20), visit_range=(5, 10))


class TestGenerateLoop:
    def test_deterministic_for_same_seed(self, spec):
        a = generate_loop(spec, random.Random(7))
        b = generate_loop(spec, random.Random(7))
        assert len(a.ddg) == len(b.ddg)
        assert a.iterations == b.iterations
        assert sorted(n.name for n in a.ddg.nodes()) == sorted(
            n.name for n in b.ddg.nodes()
        )

    def test_profile_within_ranges(self, spec):
        rng = random.Random(3)
        for i in range(20):
            loop = generate_loop(spec, rng, index=i)
            assert 10 <= loop.iterations <= 20
            assert 5 <= loop.visits <= 10

    def test_always_has_induction_recurrence(self, spec):
        loop = generate_loop(spec, random.Random(1))
        assert rec_mii(loop.ddg) >= 1
        i_node = loop.ddg.node_by_name("i")
        assert any(
            e.dst == i_node.uid and e.distance == 1
            for e in loop.ddg.out_edges(i_node)
        )

    def test_contains_all_op_kinds(self, spec):
        loop = generate_loop(spec, random.Random(2))
        counts = loop.ddg.op_counts()
        assert counts[FuKind.INT] > 0
        assert counts[FuKind.FP] > 0
        assert counts[FuKind.MEM] > 0

    def test_sharing_knob_creates_fanout(self):
        shared = LoopSpec(
            name="s", n_streams=4, shared_values=3, shared_fanout=(4, 4)
        )
        private = LoopSpec(
            name="p", n_streams=4, shared_values=4, shared_fanout=(1, 1)
        )
        loop_s = generate_loop(shared, random.Random(5))
        loop_p = generate_loop(private, random.Random(5))

        def max_pool_fanout(loop):
            """Largest consumer count of a shared address value."""
            return max(
                (
                    len(loop.ddg.children(n))
                    for n in loop.ddg.nodes()
                    if n.name.startswith("adr")
                ),
                default=0,
            )

        assert max_pool_fanout(loop_s) > max_pool_fanout(loop_p)

    def test_suite_size_and_names(self, spec):
        suite = generate_suite(spec, count=5, seed=11)
        assert len(suite) == 5
        assert [l.ddg.name for l in suite] == [f"test_{i}" for i in range(5)]


class TestLoopValidation:
    def test_bad_profile_rejected(self, spec):
        loop = generate_loop(spec, random.Random(0))
        with pytest.raises(ValueError):
            Loop(ddg=loop.ddg, iterations=0, visits=1)
        with pytest.raises(ValueError):
            Loop(ddg=loop.ddg, iterations=1, visits=0)

    def test_dynamic_instruction_count(self, spec):
        loop = generate_loop(spec, random.Random(0))
        assert loop.dynamic_instructions == (
            len(loop.ddg) * loop.iterations * loop.visits
        )
