"""The synthetic SPECfp95 suite."""

import pytest

from repro.workloads.specfp import (
    BENCHMARK_ORDER,
    BENCHMARK_SPECS,
    LOOP_COUNTS,
    all_loops,
    benchmark_loops,
    full_suite,
    total_loops,
)


class TestSuiteShape:
    def test_678_loops_total(self):
        assert total_loops() == 678
        assert sum(LOOP_COUNTS.values()) == 678

    def test_ten_benchmarks_in_paper_order(self):
        assert len(BENCHMARK_ORDER) == 10
        assert BENCHMARK_ORDER[0] == "tomcatv"
        assert set(BENCHMARK_ORDER) == set(LOOP_COUNTS)
        assert set(BENCHMARK_ORDER) == set(BENCHMARK_SPECS)

    def test_full_suite_matches_counts(self):
        suite = full_suite(limit_per_benchmark=3)
        assert all(len(loops) == 3 for loops in suite.values())

    def test_all_loops_flattens(self):
        loops = all_loops(limit_per_benchmark=2)
        assert len(loops) == 20

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            benchmark_loops("gcc")


class TestDeterminism:
    def test_regeneration_is_identical(self):
        a = benchmark_loops("swim", limit=4)
        b = benchmark_loops("swim", limit=4)
        for la, lb in zip(a, b):
            assert len(la.ddg) == len(lb.ddg)
            assert la.iterations == lb.iterations
            assert la.visits == lb.visits

    def test_limit_is_a_stable_prefix(self):
        short = benchmark_loops("apsi", limit=2)
        longer = benchmark_loops("apsi", limit=5)
        for ls, ll in zip(short, longer):
            assert len(ls.ddg) == len(ll.ddg)
            assert ls.iterations == ll.iterations


class TestSignatures:
    def test_applu_has_tiny_trip_counts(self):
        for loop in benchmark_loops("applu", limit=10):
            assert loop.iterations <= 6

    def test_swim_has_large_trip_counts(self):
        for loop in benchmark_loops("swim", limit=10):
            assert loop.iterations >= 300

    def test_mgrid_streams_are_private(self):
        spec = BENCHMARK_SPECS["mgrid"]
        assert spec.shared_fanout == (1, 1)
        assert spec.cross_link_prob == 0.0

    def test_benchmark_tag_propagates(self):
        for loop in benchmark_loops("fpppp", limit=3):
            assert loop.benchmark == "fpppp"

    def test_loops_are_modest_sized(self):
        """Graphs stay in the innermost-loop regime (no monsters)."""
        for name in BENCHMARK_ORDER:
            for loop in benchmark_loops(name, limit=8):
                assert 5 <= len(loop.ddg) <= 130
