"""Acyclic blocks derived from the loop suite."""

from repro.ddg.analysis import rec_mii
from repro.workloads.acyclic import acyclic_block, acyclic_blocks
from repro.workloads.patterns import dot_product


class TestAcyclicBlock:
    def test_loop_carried_edges_dropped(self):
        g = dot_product()
        block = acyclic_block(g)
        assert all(e.distance == 0 for e in block.edges())
        assert rec_mii(block) == 1

    def test_nodes_preserved(self):
        g = dot_product()
        block = acyclic_block(g)
        assert len(block) == len(g)
        assert {n.name for n in block.nodes()} == {n.name for n in g.nodes()}

    def test_intra_iteration_edges_preserved(self):
        g = dot_product()
        block = acyclic_block(g)
        original = sum(1 for e in g.edges() if e.distance == 0)
        assert block.n_edges() == original

    def test_source_untouched(self):
        g = dot_product()
        edges_before = g.n_edges()
        acyclic_block(g)
        assert g.n_edges() == edges_before

    def test_suite_helper(self):
        blocks = acyclic_blocks("swim", limit=3)
        assert len(blocks) == 3
        for block in blocks:
            assert all(e.distance == 0 for e in block.edges())
