"""DSP kernels: structure and compilability."""

import pytest

from repro.ddg.analysis import rec_mii
from repro.machine.config import PAPER_CONFIG_NAMES, parse_config
from repro.machine.resources import LATENCIES, OpClass
from repro.pipeline.driver import Scheme, compile_loop
from repro.sim.verifier import verify_kernel
from repro.sim.vliw import simulate
from repro.workloads.dsp import (
    DSP_KERNELS,
    complex_mac,
    fir,
    iir_biquad,
    matmul_inner,
)


class TestStructure:
    def test_fir_scales_with_taps(self):
        small, large = fir(4), fir(16)
        assert len(large) > len(small)
        loads = lambda g: sum(
            1 for n in g.nodes() if n.op_class is OpClass.LOAD
        )
        assert loads(large) == 16
        assert loads(small) == 4

    def test_fir_validates_taps(self):
        with pytest.raises(ValueError):
            fir(1)

    def test_fir_is_acyclic_except_induction(self):
        g = fir(8)
        # Only the induction variable recurs: RecMII = 1.
        assert rec_mii(g) == 1

    def test_biquad_recurrence_bounds_ii(self):
        g = iir_biquad()
        # y -> a1y (dist 1) -> fb -> y: latencies 3 (y) + 6 (a1y) + 3 (fb)
        # over distance 1 -> RecMII 12; the dist-2 path halves its sum.
        assert rec_mii(g) == (
            LATENCIES[OpClass.FP_ARITH] * 2 + LATENCIES[OpClass.FP_MUL]
        )

    def test_complex_mac_shape(self):
        g = complex_mac()
        muls = [n for n in g.nodes() if n.op_class is OpClass.FP_MUL]
        assert len(muls) == 4
        assert rec_mii(g) == LATENCIES[OpClass.FP_ARITH]

    def test_matmul_unroll(self):
        assert len(matmul_inner(4)) > len(matmul_inner(2))
        with pytest.raises(ValueError):
            matmul_inner(0)


class TestCompilation:
    @pytest.mark.parametrize("name", sorted(DSP_KERNELS))
    def test_kernels_compile_on_4_clusters(self, name):
        machine = parse_config("4c1b2l64r")
        g = DSP_KERNELS[name]()
        base = compile_loop(g, machine, scheme=Scheme.BASELINE)
        repl = compile_loop(g, machine, scheme=Scheme.REPLICATION)
        verify_kernel(base.kernel)
        verify_kernel(repl.kernel)
        assert repl.ii <= base.ii

    def test_fir16_benefits_from_replication(self):
        """A wide MAC tree is exactly the shape replication likes."""
        machine = parse_config("4c2b4l64r")
        g = fir(16)
        base = compile_loop(g, machine, scheme=Scheme.BASELINE)
        repl = compile_loop(g, machine, scheme=Scheme.REPLICATION)
        ipc_base = simulate(base.kernel, 256).ipc
        ipc_repl = simulate(repl.kernel, 256).ipc
        assert ipc_repl >= ipc_base

    def test_biquad_ii_hits_recurrence_bound_somewhere(self):
        """The feedback recurrence, not the bus, limits the biquad."""
        g = iir_biquad()
        machine = parse_config("2c1b2l64r")
        result = compile_loop(g, machine, scheme=Scheme.REPLICATION)
        assert result.ii >= rec_mii(g)

    def test_all_kernels_on_all_paper_configs(self):
        for config in PAPER_CONFIG_NAMES:
            machine = parse_config(config)
            for name in ("fir8", "complex_mac"):
                result = compile_loop(
                    DSP_KERNELS[name](), machine, scheme=Scheme.REPLICATION
                )
                verify_kernel(result.kernel)
