"""Kernel accounting: length, stage count, Texec, op classes."""

import pytest

from repro.core.plan import EMPTY_PLAN
from repro.machine.config import unified_machine, parse_config
from repro.partition.partition import Partition
from repro.partition.multilevel import initial_partition
from repro.schedule.placed import build_placed_graph
from repro.schedule.scheduler import schedule
from repro.workloads.patterns import stencil5


@pytest.fixture
def chain_kernel(chain_ddg):
    m = unified_machine()
    part = Partition(chain_ddg, {u: 0 for u in chain_ddg.node_ids()}, 1)
    graph = build_placed_graph(chain_ddg, part, m, EMPTY_PLAN)
    return schedule(graph, m, ii=2)


class TestKernelAccounting:
    def test_stage_count_formula(self, chain_kernel):
        import math

        k = chain_kernel
        assert k.stage_count == math.ceil(k.length / k.ii)

    def test_execution_cycles_paper_formula(self, chain_kernel):
        k = chain_kernel
        for n in (1, 4, 100):
            assert k.execution_cycles(n) == (n - 1 + k.stage_count) * k.ii
        assert k.execution_cycles(0) == 0

    def test_modulo_slot(self, chain_kernel):
        k = chain_kernel
        for iid, op in k.ops.items():
            assert k.modulo_slot(iid) == op.start % k.ii

    def test_op_role_counters(self):
        m = parse_config("2c1b2l64r")
        ddg = stencil5()
        part = initial_partition(ddg, m, 6)
        graph = build_placed_graph(ddg, part, m, EMPTY_PLAN)
        kernel = schedule(graph, m, ii=6)
        assert kernel.n_original_ops() == len(ddg)
        assert kernel.n_replica_ops() == 0
        assert kernel.n_copy_ops() == part.nof_coms()

    def test_rows_render(self, chain_kernel):
        rows = chain_kernel.rows()
        assert len(rows) == 3
        assert any("load" in r for r in rows)

    def test_length_includes_final_latency(self, chain_kernel):
        k = chain_kernel
        last = max(op.start for op in k.ops.values())
        assert k.length > last
