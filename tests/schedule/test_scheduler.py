"""The cluster-aware modulo scheduler."""

import pytest

from repro.core.plan import EMPTY_PLAN
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config, unified_machine
from repro.partition.partition import Partition
from repro.partition.multilevel import initial_partition
from repro.schedule.placed import build_placed_graph
from repro.schedule.scheduler import FailureCause, ScheduleFailure, schedule
from repro.sim.verifier import verify_kernel
from repro.workloads.patterns import daxpy, dot_product, stencil5


@pytest.fixture
def m2():
    return parse_config("2c1b2l64r")


@pytest.fixture
def m4():
    return parse_config("4c1b2l64r")


def placed(ddg, machine, ii):
    part = initial_partition(ddg, machine, ii)
    return build_placed_graph(ddg, part, machine, EMPTY_PLAN)


class TestBasicScheduling:
    def test_chain_scheduled_back_to_back(self, chain_ddg):
        m = unified_machine()
        part = Partition(chain_ddg, {u: 0 for u in chain_ddg.node_ids()}, 1)
        graph = build_placed_graph(chain_ddg, part, m, EMPTY_PLAN)
        kernel = schedule(graph, m, ii=1)
        # load(2) -> add(3) -> store: length 2+3+2 = 7.
        assert kernel.length == 7
        verify_kernel(kernel)

    def test_kernels_verify_on_pattern_loops(self, m2, m4):
        for machine in (m2, m4):
            for ddg in (daxpy(), stencil5(), dot_product()):
                part = initial_partition(ddg, machine, 8)
                graph = build_placed_graph(ddg, part, machine, EMPTY_PLAN)
                kernel = schedule(graph, machine, ii=8)
                verify_kernel(kernel)

    def test_ii_recorded(self, chain_ddg):
        m = unified_machine()
        part = Partition(chain_ddg, {u: 0 for u in chain_ddg.node_ids()}, 1)
        graph = build_placed_graph(chain_ddg, part, m, EMPTY_PLAN)
        assert schedule(graph, m, ii=3).ii == 3

    def test_schedule_normalized_to_cycle_zero(self, m2):
        graph = placed(stencil5(), m2, 4)
        kernel = schedule(graph, m2, ii=4)
        assert min(op.start for op in kernel.ops.values()) == 0


class TestFailures:
    def test_recurrence_too_tight_raises(self):
        b = DdgBuilder()
        b.fp_op("a").fp_op("b")
        b.dep("a", "b").dep("b", "a", distance=1)  # RecMII = 6
        g = b.build()
        m = unified_machine()
        part = Partition(g, {u: 0 for u in g.node_ids()}, 1)
        graph = build_placed_graph(g, part, m, EMPTY_PLAN)
        with pytest.raises(ScheduleFailure) as exc:
            schedule(graph, m, ii=3)
        assert exc.value.cause is FailureCause.RECURRENCES

    def test_bus_overflow_raises_bus_cause(self, m4):
        """More communications than bus slots at this II."""
        b = DdgBuilder()
        # Three producers, each consumed remotely: 3 comms, capacity 1 at II=2.
        for i in range(3):
            b.int_op(f"p{i}")
            b.fp_op(f"c{i}")
            b.dep(f"p{i}", f"c{i}")
        g = b.build()
        assignment = {}
        for i in range(3):
            assignment[g.node_by_name(f"p{i}").uid] = i
            assignment[g.node_by_name(f"c{i}").uid] = (i + 1) % 4
        part = Partition(g, assignment, 4)
        graph = build_placed_graph(g, part, m4, EMPTY_PLAN)
        with pytest.raises(ScheduleFailure) as exc:
            schedule(graph, m4, ii=2)
        assert exc.value.cause is FailureCause.BUS

    def test_register_pressure_raises(self):
        """Many long-lived values overflow a tiny register file."""
        m = parse_config("2c1b2l4r")  # 4 registers per cluster
        b = DdgBuilder()
        b.int_op("root")
        for i in range(10):
            b.int_op(f"v{i}")
            b.dep("root", f"v{i}")
        b.fp_op("sink")
        for i in range(10):
            b.dep(f"v{i}", "sink")
        g = b.build()
        part = Partition(g, {u: 0 for u in g.node_ids()}, 2)
        graph = build_placed_graph(g, part, m, EMPTY_PLAN)
        with pytest.raises(ScheduleFailure) as exc:
            schedule(graph, m, ii=6)
        assert exc.value.cause is FailureCause.REGISTERS

    def test_register_check_can_be_disabled(self):
        m = parse_config("2c1b2l4r")
        b = DdgBuilder()
        b.int_op("root")
        for i in range(10):
            b.int_op(f"v{i}")
            b.dep("root", f"v{i}")
        b.fp_op("sink")
        for i in range(10):
            b.dep(f"v{i}", "sink")
        g = b.build()
        part = Partition(g, {u: 0 for u in g.node_ids()}, 2)
        graph = build_placed_graph(g, part, m, EMPTY_PLAN)
        kernel = schedule(graph, m, ii=6, check_registers=False)
        assert kernel.ii == 6


class TestZeroLatencyMode:
    def test_override_shortens_length(self, m2):
        """Section 5.1's bound: copies cost no dependence latency."""
        b = DdgBuilder()
        b.int_op("p").fp_op("c")
        b.dep("p", "c")
        g = b.build()
        part = Partition(
            g, {g.node_by_name("p").uid: 0, g.node_by_name("c").uid: 1}, 2
        )
        graph = build_placed_graph(g, part, m2, EMPTY_PLAN)
        normal = schedule(graph, m2, ii=2)
        graph2 = build_placed_graph(g, part, m2, EMPTY_PLAN)
        bound = schedule(graph2, m2, ii=2, copy_latency_override=0)
        assert bound.length < normal.length

    def test_override_still_occupies_bus(self, m2):
        b = DdgBuilder()
        b.int_op("p").fp_op("c")
        b.dep("p", "c")
        g = b.build()
        part = Partition(
            g, {g.node_by_name("p").uid: 0, g.node_by_name("c").uid: 1}, 2
        )
        graph = build_placed_graph(g, part, m2, EMPTY_PLAN)
        kernel = schedule(graph, m2, ii=2, copy_latency_override=0)
        (copy_op,) = [
            op for op in kernel.ops.values() if op.instance.is_copy
        ]
        assert copy_op.bus is not None
