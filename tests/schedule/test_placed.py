"""Placed-graph construction: instances, copies, operand resolution."""

import pytest

from repro.core.plan import EMPTY_PLAN, ReplicationPlan
from repro.ddg.builder import DdgBuilder
from repro.ddg.graph import EdgeKind
from repro.machine.config import parse_config, unified_machine
from repro.machine.resources import OpClass
from repro.partition.partition import Partition
from repro.schedule.placed import (
    PlacementError,
    Role,
    build_placed_graph,
)


@pytest.fixture
def m2():
    return parse_config("2c1b2l64r")


@pytest.fixture
def cross_pair():
    """p (cluster 0) feeds c1 and c2 (cluster 1)."""
    b = DdgBuilder("cross")
    b.int_op("p").int_op("c1").int_op("c2")
    b.dep("p", "c1").dep("p", "c2", distance=2)
    g = b.build()
    assignment = {
        g.node_by_name("p").uid: 0,
        g.node_by_name("c1").uid: 1,
        g.node_by_name("c2").uid: 1,
    }
    return g, Partition(g, assignment, 2)


def by_name(graph, name):
    return next(i for i in graph.instances() if i.name == name)


class TestBaselinePlacement:
    def test_one_copy_for_broadcast_value(self, cross_pair, m2):
        g, part = cross_pair
        placed = build_placed_graph(g, part, m2, EMPTY_PLAN)
        assert placed.n_comms() == 1
        (copy,) = placed.copies()
        assert copy.op_class is OpClass.COPY
        assert copy.cluster == 0  # driven from the producer's cluster

    def test_consumers_read_from_copy_with_original_distances(
        self, cross_pair, m2
    ):
        g, part = cross_pair
        placed = build_placed_graph(g, part, m2, EMPTY_PLAN)
        (copy,) = placed.copies()
        dist = {
            placed.instance(e.dst).name: e.distance
            for e in placed.out_edges(copy.iid)
        }
        assert dist == {"c1": 0, "c2": 2}

    def test_local_consumers_bypass_the_bus(self, m2):
        b = DdgBuilder()
        b.int_op("p").int_op("c")
        b.dep("p", "c")
        g = b.build()
        part = Partition(g, {uid: 0 for uid in g.node_ids()}, 2)
        placed = build_placed_graph(g, part, m2, EMPTY_PLAN)
        assert placed.n_comms() == 0

    def test_unified_machine_never_copies(self, cross_pair):
        g, _ = cross_pair
        part = Partition(g, {uid: 0 for uid in g.node_ids()}, 1)
        placed = build_placed_graph(g, part, unified_machine(), EMPTY_PLAN)
        assert placed.n_comms() == 0

    def test_memory_edges_cross_clusters_freely(self, m2):
        b = DdgBuilder()
        b.store("st").load("ld")
        b.mem_dep("st", "ld", distance=1)
        g = b.build()
        part = Partition(
            g,
            {g.node_by_name("st").uid: 0, g.node_by_name("ld").uid: 1},
            2,
        )
        placed = build_placed_graph(g, part, m2, EMPTY_PLAN)
        assert placed.n_comms() == 0
        ld = by_name(placed, "ld")
        (edge,) = placed.in_edges(ld.iid)
        assert edge.kind is EdgeKind.MEMORY


class TestReplicatedPlacement:
    def test_replica_absorbs_the_communication(self, cross_pair, m2):
        g, part = cross_pair
        p = g.node_by_name("p").uid
        plan = ReplicationPlan(
            replicas={p: frozenset({1})}, removed_comms=frozenset({p})
        )
        placed = build_placed_graph(g, part, m2, plan)
        assert placed.n_comms() == 0
        replica = by_name(placed, "p'")
        assert replica.role is Role.REPLICA
        assert replica.cluster == 1
        c1 = by_name(placed, "c1")
        (edge,) = placed.in_edges(c1.iid)
        assert edge.src == replica.iid

    def test_removed_original_with_replicas(self, cross_pair, m2):
        g, part = cross_pair
        p = g.node_by_name("p").uid
        plan = ReplicationPlan(
            replicas={p: frozenset({1})},
            removed=frozenset({p}),
            removed_comms=frozenset({p}),
        )
        placed = build_placed_graph(g, part, m2, plan)
        names = {i.name for i in placed.instances()}
        assert "p" not in names and "p'" in names

    def test_inconsistent_plan_rejected(self, cross_pair, m2):
        """Removing the comm without replicating strands the consumers."""
        g, part = cross_pair
        p = g.node_by_name("p").uid
        plan = ReplicationPlan(removed_comms=frozenset({p}))
        with pytest.raises(PlacementError):
            build_placed_graph(g, part, m2, plan)

    def test_replica_in_home_cluster_rejected(self, cross_pair, m2):
        g, part = cross_pair
        p = g.node_by_name("p").uid
        plan = ReplicationPlan(replicas={p: frozenset({0})})
        with pytest.raises(PlacementError):
            build_placed_graph(g, part, m2, plan)

    def test_replica_reads_surviving_broadcast(self, m2):
        """A replica's parent with a live comm is read through the bus."""
        b = DdgBuilder()
        b.int_op("g").int_op("p").int_op("c")
        b.dep("g", "p").dep("p", "c")
        b.int_op("g_user")
        b.dep("g", "g_user")
        g = b.build()
        assignment = {
            g.node_by_name("g").uid: 0,
            g.node_by_name("p").uid: 0,
            g.node_by_name("g_user").uid: 1,
            g.node_by_name("c").uid: 1,
        }
        part = Partition(g, assignment, 2)
        p = g.node_by_name("p").uid
        plan = ReplicationPlan(
            replicas={p: frozenset({1})}, removed_comms=frozenset({p})
        )
        placed = build_placed_graph(g, part, m2, plan)
        # g still broadcasts (g_user and now p' consume it in cluster 1).
        assert placed.n_comms() == 1
        replica = by_name(placed, "p'")
        (edge,) = placed.in_edges(replica.iid)
        assert placed.instance(edge.src).is_copy
