"""Iterative modulo scheduling: the backtracking ablation."""

import pytest

from repro.core.plan import EMPTY_PLAN
from repro.core.replicator import replicate
from repro.ddg.analysis import mii
from repro.machine.config import parse_config, unified_machine
from repro.partition.multilevel import MultilevelPartitioner
from repro.partition.partition import Partition
from repro.pipeline.passes import LinearEscalation, find_min_ii
from repro.schedule.ims import ims_schedule
from repro.schedule.placed import build_placed_graph
from repro.schedule.scheduler import FailureCause, ScheduleFailure, schedule
from repro.sim.verifier import verify_kernel
from repro.workloads.patterns import daxpy, dot_product, stencil5
from repro.workloads.specfp import benchmark_loops


def placed_for(ddg, machine, ii, with_replication=False):
    if machine.is_clustered:
        partitioner = MultilevelPartitioner(ddg=ddg, machine=machine)
        part = partitioner.partition(ii)
    else:
        part = Partition(ddg, {u: 0 for u in ddg.node_ids()}, 1)
    plan = replicate(part, machine, ii) if with_replication else EMPTY_PLAN
    if not plan.feasible:
        plan = EMPTY_PLAN
    return build_placed_graph(ddg, part, machine, plan)


def min_ii_with(scheduler, ddg, machine, lo):
    """Linear search via the driver's shared escalation machinery."""

    def attempt(ii):
        graph = placed_for(ddg, machine, ii)
        if machine.is_clustered and graph.n_comms() > machine.bus.capacity(ii):
            raise ScheduleFailure(
                FailureCause.BUS, f"too many communications at II={ii}"
            )
        return scheduler(graph, machine, ii)

    return find_min_ii(attempt, lo, lo + 63, LinearEscalation())


class TestImsCorrectness:
    @pytest.mark.parametrize("make,ii", [(daxpy, 4), (stencil5, 6), (dot_product, 4)])
    def test_kernels_verify(self, make, ii):
        machine = parse_config("2c1b2l64r")
        graph = placed_for(make(), machine, ii)
        kernel = ims_schedule(graph, machine, ii)
        verify_kernel(kernel)

    def test_suite_loops_verify(self):
        machine = parse_config("4c1b2l64r")
        for loop in benchmark_loops("hydro2d", limit=4):
            lo = mii(loop.ddg, machine)
            _, kernel = min_ii_with(ims_schedule, loop.ddg, machine, lo)
            verify_kernel(kernel)

    def test_unified_machine(self):
        machine = unified_machine()
        graph = placed_for(stencil5(), machine, 2)
        kernel = ims_schedule(graph, machine, 2)
        verify_kernel(kernel)
        assert kernel.ii == 2

    def test_empty_graph(self):
        from repro.ddg.graph import Ddg

        machine = unified_machine()
        graph = build_placed_graph(
            Ddg(), Partition(Ddg(), {}, 1), machine, EMPTY_PLAN
        )
        assert ims_schedule(graph, machine, 1).length == 0

    def test_budget_exhaustion_fails_cleanly(self):
        machine = parse_config("2c1b2l64r")
        graph = placed_for(stencil5(), machine, 6)
        with pytest.raises(ScheduleFailure):
            ims_schedule(graph, machine, 6, budget_factor=0)


class TestImsVsBaseline:
    def test_ims_recovers_tight_iis(self):
        """Backtracking can fit cases the one-pass scheduler bumps.

        On this suite the two schedulers end up close — the paper's
        observation that a good partition makes cheap scheduling
        sufficient — so we assert IMS is never *worse* by more than one
        and never beats the baseline by a wide margin.
        """
        machine = parse_config("4c1b2l64r")
        diffs = []
        for loop in benchmark_loops("apsi", limit=5):
            lo = mii(loop.ddg, machine)
            baseline_ii, _ = min_ii_with(schedule, loop.ddg, machine, lo)
            ims_ii, _ = min_ii_with(ims_schedule, loop.ddg, machine, lo)
            diffs.append(baseline_ii - ims_ii)
        assert all(-1 <= d <= 3 for d in diffs), diffs

    def test_same_ii_on_simple_patterns(self):
        machine = parse_config("2c1b2l64r")
        for make in (daxpy, stencil5, dot_product):
            ddg = make()
            lo = mii(ddg, machine)
            baseline_ii, _ = min_ii_with(schedule, ddg, machine, lo)
            ims_ii, _ = min_ii_with(ims_schedule, ddg, machine, lo)
            assert abs(baseline_ii - ims_ii) <= 1
