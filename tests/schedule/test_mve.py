"""Modulo variable expansion and code size."""

import pytest

from repro.core.plan import EMPTY_PLAN
from repro.ddg.builder import DdgBuilder
from repro.machine.config import unified_machine
from repro.machine.resources import OpClass
from repro.partition.partition import Partition
from repro.schedule.mve import code_size, mve_unroll_factor, value_lifetimes
from repro.schedule.placed import build_placed_graph
from repro.schedule.scheduler import schedule


def kernel_for(ddg, ii):
    m = unified_machine()
    part = Partition(ddg, {u: 0 for u in ddg.node_ids()}, 1)
    graph = build_placed_graph(ddg, part, m, EMPTY_PLAN)
    return schedule(graph, m, ii, check_registers=False)


@pytest.fixture
def long_lived():
    """A div result consumed late: lifetime far beyond small IIs."""
    b = DdgBuilder()
    b.int_op("p")
    b.op("d", OpClass.FP_DIV)  # latency 18
    b.dep("p", "d")
    b.fp_op("a").fp_op("bb").fp_op("c")
    b.chain("d", "a", "bb", "c")
    b.fp_op("late")
    b.dep("d", "late").dep("c", "late")
    return b.build()


class TestLifetimes:
    def test_chain_lifetimes_are_gaps(self, chain_ddg):
        kernel = kernel_for(chain_ddg, ii=3)
        lifetimes = value_lifetimes(kernel)
        # Back-to-back chain: every value read the cycle it is ready.
        assert all(v == 0 for v in lifetimes.values())

    def test_store_has_no_lifetime_entry(self, chain_ddg):
        kernel = kernel_for(chain_ddg, ii=3)
        store_iids = {
            i.iid
            for i in kernel.graph.instances()
            if i.op_class is OpClass.STORE
        }
        assert store_iids.isdisjoint(value_lifetimes(kernel))

    def test_loop_carried_read_matches_definition(self):
        b = DdgBuilder()
        b.int_op("v").int_op("user")
        b.dep("v", "user", distance=3)
        g = b.build()
        kernel = kernel_for(g, ii=2)
        lifetimes = value_lifetimes(kernel)
        v = next(i.iid for i in kernel.graph.instances() if i.name == "v")
        user = next(
            i.iid for i in kernel.graph.instances() if i.name == "user"
        )
        t_def = kernel.start_of(v) + kernel.effective_latency(kernel.ops[v])
        t_read = kernel.start_of(user) + 3 * kernel.ii
        assert lifetimes[v] == max(0, t_read - t_def)


class TestMve:
    def test_tight_chain_needs_no_expansion(self, chain_ddg):
        assert mve_unroll_factor(kernel_for(chain_ddg, ii=3)) == 1

    def test_long_lifetime_forces_expansion(self, long_lived):
        kernel = kernel_for(long_lived, ii=2)
        assert mve_unroll_factor(kernel) > 1

    def test_larger_ii_reduces_expansion(self, long_lived):
        tight = mve_unroll_factor(kernel_for(long_lived, ii=2))
        loose = mve_unroll_factor(kernel_for(long_lived, ii=12))
        assert loose <= tight


class TestCodeSize:
    def test_rotating_registers_keep_kernel_at_ii(self, long_lived):
        kernel = kernel_for(long_lived, ii=4)
        size = code_size(kernel, rotating_registers=True)
        assert size.kernel_words == 4
        assert size.mve_factor == 1

    def test_mve_multiplies_kernel(self, long_lived):
        kernel = kernel_for(long_lived, ii=4)
        size = code_size(kernel, rotating_registers=False)
        assert size.kernel_words == 4 * size.mve_factor
        assert size.mve_factor == mve_unroll_factor(kernel)

    def test_prolog_epilog_from_stage_count(self, chain_ddg):
        kernel = kernel_for(chain_ddg, ii=3)
        size = code_size(kernel)
        assert size.prolog_words == (kernel.stage_count - 1) * 3
        assert size.epilog_words == size.prolog_words
        assert size.total_words == (
            size.kernel_words + 2 * size.prolog_words
        )
