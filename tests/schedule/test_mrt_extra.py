"""MRT release paths and transfer accounting (backtracking support)."""

import pytest

from repro.machine.config import parse_config
from repro.machine.resources import FuKind
from repro.schedule.mrt import ModuloReservationTable, MrtError


@pytest.fixture
def m4():
    return parse_config("4c1b2l64r")


class TestReleaseFu:
    def test_release_reopens_slot(self, m4):
        mrt = ModuloReservationTable(m4, ii=2)
        mrt.reserve_fu(0, FuKind.INT, 1)
        assert not mrt.fu_free(0, FuKind.INT, 1)
        mrt.release_fu(0, FuKind.INT, 1)
        assert mrt.fu_free(0, FuKind.INT, 1)

    def test_release_uses_modulo_slot(self, m4):
        mrt = ModuloReservationTable(m4, ii=3)
        mrt.reserve_fu(0, FuKind.FP, 4)  # slot 1
        mrt.release_fu(0, FuKind.FP, 1)
        assert mrt.fu_free(0, FuKind.FP, 4)

    def test_unreserved_release_raises(self, m4):
        mrt = ModuloReservationTable(m4, ii=2)
        with pytest.raises(MrtError):
            mrt.release_fu(0, FuKind.INT, 0)


class TestReleaseBus:
    def test_release_frees_all_latency_slots(self, m4):
        mrt = ModuloReservationTable(m4, ii=4)
        bus = mrt.reserve_bus(1)  # slots 1 and 2
        mrt.release_bus(bus, 1)
        assert mrt.bus_free(1)
        assert mrt.bus_free(2)

    def test_unreserved_release_raises(self, m4):
        mrt = ModuloReservationTable(m4, ii=4)
        with pytest.raises(MrtError):
            mrt.release_bus(0, 0)

    def test_transfer_count(self, m4):
        mrt = ModuloReservationTable(m4, ii=4)
        assert mrt.bus_transfers() == 0
        mrt.reserve_bus(0)
        assert mrt.bus_transfers() == 1
        mrt.reserve_bus(2)
        assert mrt.bus_transfers() == 2
