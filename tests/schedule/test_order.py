"""Scheduling order: one-sided-window guarantee and analysis."""

import pytest

from repro.core.plan import EMPTY_PLAN
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config, unified_machine
from repro.partition.partition import Partition
from repro.partition.multilevel import initial_partition
from repro.schedule.order import compute_order, placed_analysis
from repro.schedule.placed import build_placed_graph
from repro.workloads.specfp import benchmark_loops


def placed_for(ddg, machine, ii):
    if machine.is_clustered:
        part = initial_partition(ddg, machine, ii)
    else:
        part = Partition(ddg, {u: 0 for u in ddg.node_ids()}, 1)
    return build_placed_graph(ddg, part, machine, EMPTY_PLAN)


def scc_of(graph):
    from repro.ddg.analysis import tarjan_scc

    ids = [i.iid for i in graph.instances()]
    comps = tarjan_scc(ids, lambda u: [e.dst for e in graph.out_edges(u)])
    member = {}
    for idx, comp in enumerate(comps):
        for iid in comp:
            member[iid] = idx
    return member


class TestOneSidedGuarantee:
    @pytest.mark.parametrize("bench", ["tomcatv", "fpppp", "applu"])
    def test_placed_neighbours_are_predecessors_or_same_scc(self, bench):
        from repro.ddg.analysis import rec_mii

        machine = parse_config("4c1b2l64r")
        for loop in benchmark_loops(bench, limit=3):
            ii = max(8, rec_mii(loop.ddg))
            graph = placed_for(loop.ddg, machine, ii)
            order = compute_order(graph, machine, ii)
            member = scc_of(graph)
            seen = set()
            for inst in order:
                for edge in graph.out_edges(inst.iid):
                    if edge.dst in seen:
                        # a successor placed earlier must share the SCC
                        assert member[edge.dst] == member[inst.iid]
                seen.add(inst.iid)

    def test_order_covers_every_instance_once(self):
        machine = parse_config("2c1b2l64r")
        loop = benchmark_loops("swim", limit=1)[0]
        graph = placed_for(loop.ddg, machine, 6)
        order = compute_order(graph, machine, 6)
        assert sorted(i.iid for i in order) == sorted(
            i.iid for i in graph.instances()
        )


class TestPlacedAnalysis:
    def test_chain_asap(self, chain_ddg):
        m = unified_machine()
        graph = placed_for(chain_ddg, m, 1)
        analysis = placed_analysis(graph, m, 1)
        times = sorted(analysis.asap.values())
        assert times == [0, 2, 5]  # load(2) then add(3) then store
        assert analysis.length == 7

    def test_copy_latency_override_shrinks_length(self):
        m = parse_config("2c1b2l64r")
        b = DdgBuilder()
        b.int_op("p").fp_op("c")
        b.dep("p", "c")
        g = b.build()
        part = Partition(
            g, {g.node_by_name("p").uid: 0, g.node_by_name("c").uid: 1}, 2
        )
        graph = build_placed_graph(g, part, m, EMPTY_PLAN)
        normal = placed_analysis(graph, m, 2)
        bound = placed_analysis(graph, m, 2, copy_latency_override=0)
        assert bound.length == normal.length - m.bus.latency

    def test_slack_zero_on_critical_path(self, chain_ddg):
        m = unified_machine()
        graph = placed_for(chain_ddg, m, 1)
        analysis = placed_analysis(graph, m, 1)
        assert all(analysis.slack(i.iid) == 0 for i in graph.instances())
