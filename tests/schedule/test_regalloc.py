"""Register allocation on modulo-scheduled kernels."""

import pytest

from repro.core.plan import EMPTY_PLAN
from repro.core.replicator import replicate
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config, unified_machine
from repro.partition.partition import Partition
from repro.partition.multilevel import initial_partition
from repro.schedule.placed import build_placed_graph
from repro.schedule.regalloc import (
    AllocationError,
    allocate,
    verify_allocation,
)
from repro.schedule.registers import max_live
from repro.schedule.scheduler import schedule
from repro.workloads.patterns import daxpy, dot_product, stencil5
from repro.workloads.specfp import benchmark_loops


def kernel_for(ddg, machine, ii, with_replication=False):
    if machine.is_clustered:
        part = initial_partition(ddg, machine, ii)
    else:
        part = Partition(ddg, {u: 0 for u in ddg.node_ids()}, 1)
    plan = replicate(part, machine, ii) if with_replication else EMPTY_PLAN
    graph = build_placed_graph(ddg, part, machine, plan)
    return schedule(graph, machine, ii)


class TestAllocate:
    @pytest.mark.parametrize("make,ii", [(daxpy, 4), (stencil5, 6), (dot_product, 4)])
    def test_patterns_allocate_and_verify(self, make, ii):
        machine = parse_config("2c1b2l64r")
        kernel = kernel_for(make(), machine, ii, with_replication=True)
        for allocation in allocate(kernel):
            verify_allocation(kernel, allocation)
            assert allocation.registers_used <= machine.registers(
                allocation.cluster
            )

    def test_suite_loops_allocate(self):
        from repro.ddg.analysis import rec_mii

        machine = parse_config("4c1b2l64r")
        for loop in benchmark_loops("hydro2d", limit=4):
            ii = max(8, rec_mii(loop.ddg))
            kernel = kernel_for(loop.ddg, machine, ii, with_replication=True)
            for allocation in allocate(kernel):
                verify_allocation(kernel, allocation)

    def test_usage_at_least_maxlive_floor(self):
        """First-fit can exceed but never undershoot true demand.

        MaxLive is itself an estimate; the sanity bound here is loose:
        the allocator must use at least one register when values exist.
        """
        machine = parse_config("2c1b2l64r")
        kernel = kernel_for(stencil5(), machine, 6)
        pressures = max_live(kernel)
        for allocation in allocate(kernel):
            if pressures[allocation.cluster]:
                assert allocation.registers_used >= 1

    def test_every_value_iteration_class_assigned(self):
        machine = unified_machine()
        kernel = kernel_for(dot_product(), machine, 3)
        (allocation,) = allocate(kernel)
        unroll = allocation.ring // kernel.ii
        values = {p for (p, _k) in allocation.assignment}
        for producer in values:
            classes = {
                k for (p, k) in allocation.assignment if p == producer
            }
            assert classes == set(range(unroll))

    def test_strict_overflow_raises(self):
        machine = parse_config("2c1b2l2r")  # 2 registers per cluster
        b = DdgBuilder()
        b.int_op("root")
        for i in range(5):
            b.int_op(f"v{i}")
            b.dep("root", f"v{i}")
        b.fp_op("sink")
        for i in range(5):
            b.dep(f"v{i}", "sink")
        g = b.build()
        part = Partition(g, {u: 0 for u in g.node_ids()}, 2)
        graph = build_placed_graph(g, part, machine, EMPTY_PLAN)
        kernel = schedule(graph, machine, 7, check_registers=False)
        with pytest.raises(AllocationError):
            allocate(kernel)
        relaxed = allocate(kernel, strict=False)
        assert relaxed[0].registers_used > 2

    def test_verify_catches_tampering(self):
        machine = unified_machine()
        kernel = kernel_for(stencil5(), machine, 3)
        (allocation,) = allocate(kernel)
        keys = [
            k for k in allocation.assignment
        ]
        if len(keys) >= 2:
            # Map two overlapping arcs onto one register.
            a, b = keys[0], keys[1]
            allocation.assignment[b] = allocation.assignment[a]
            with pytest.raises(AllocationError):
                verify_allocation(kernel, allocation)


class TestLongLifetimes:
    def test_mve_ring_expands_for_long_values(self):
        from repro.machine.resources import OpClass

        b = DdgBuilder()
        b.int_op("p")
        b.op("d", OpClass.FP_DIV)
        b.dep("p", "d")
        b.fp_op("late")
        b.dep("d", "late").dep("p", "late")
        g = b.build()
        machine = unified_machine()
        part = Partition(g, {u: 0 for u in g.node_ids()}, 1)
        graph = build_placed_graph(g, part, machine, EMPTY_PLAN)
        kernel = schedule(graph, machine, 2, check_registers=False)
        (allocation,) = allocate(kernel, strict=False)
        assert allocation.ring > kernel.ii
        verify_allocation(kernel, allocation)