"""Kernel latency-override accounting (section 5.1 plumbing)."""

import pytest

from repro.core.plan import EMPTY_PLAN
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config
from repro.partition.partition import Partition
from repro.schedule.placed import build_placed_graph
from repro.schedule.scheduler import schedule


@pytest.fixture
def split_kernel_pair():
    """The same cross-cluster pair scheduled normally and at latency 0."""
    m = parse_config("2c1b2l64r")
    b = DdgBuilder()
    b.int_op("p").fp_op("c")
    b.dep("p", "c")
    g = b.build()
    part = Partition(
        g, {g.node_by_name("p").uid: 0, g.node_by_name("c").uid: 1}, 2
    )

    def make(override):
        graph = build_placed_graph(g, part, m, EMPTY_PLAN)
        return schedule(graph, m, ii=2, copy_latency_override=override)

    return make(None), make(0)


class TestEffectiveLatency:
    def test_override_recorded(self, split_kernel_pair):
        normal, bound = split_kernel_pair
        assert normal.copy_latency_override is None
        assert bound.copy_latency_override == 0

    def test_copy_latency_respected_in_length(self, split_kernel_pair):
        normal, bound = split_kernel_pair
        assert bound.length == normal.length - normal.machine.bus.latency

    def test_effective_latency_only_touches_copies(self, split_kernel_pair):
        _, bound = split_kernel_pair
        for op in bound.ops.values():
            if op.instance.is_copy:
                assert bound.effective_latency(op) == 0
            else:
                assert bound.effective_latency(op) == (
                    bound.machine.latency_of(op.instance.op_class)
                )

    def test_execution_cycles_shrink_with_override(self, split_kernel_pair):
        normal, bound = split_kernel_pair
        assert bound.execution_cycles(10) <= normal.execution_cycles(10)
