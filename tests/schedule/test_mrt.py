"""Modulo reservation tables."""

import pytest

from repro.machine.config import parse_config
from repro.machine.resources import FuKind
from repro.schedule.mrt import ModuloReservationTable, MrtError


@pytest.fixture
def m4():
    return parse_config("4c1b2l64r")  # 1 unit per kind, 1 bus latency 2


class TestFunctionalUnits:
    def test_slot_fills_up(self, m4):
        mrt = ModuloReservationTable(m4, ii=3)
        assert mrt.fu_free(0, FuKind.INT, 0)
        mrt.reserve_fu(0, FuKind.INT, 0)
        assert not mrt.fu_free(0, FuKind.INT, 0)
        assert mrt.fu_free(0, FuKind.INT, 1)

    def test_modulo_wrapping(self, m4):
        mrt = ModuloReservationTable(m4, ii=3)
        mrt.reserve_fu(0, FuKind.INT, 1)
        assert not mrt.fu_free(0, FuKind.INT, 4)  # 4 % 3 == 1
        assert not mrt.fu_free(0, FuKind.INT, -2)  # -2 % 3 == 1

    def test_clusters_independent(self, m4):
        mrt = ModuloReservationTable(m4, ii=2)
        mrt.reserve_fu(0, FuKind.FP, 0)
        assert mrt.fu_free(1, FuKind.FP, 0)

    def test_kinds_independent(self, m4):
        mrt = ModuloReservationTable(m4, ii=2)
        mrt.reserve_fu(0, FuKind.INT, 0)
        assert mrt.fu_free(0, FuKind.MEM, 0)

    def test_overbooking_raises(self, m4):
        mrt = ModuloReservationTable(m4, ii=2)
        mrt.reserve_fu(0, FuKind.INT, 0)
        with pytest.raises(MrtError):
            mrt.reserve_fu(0, FuKind.INT, 0)

    def test_multi_unit_cluster(self):
        m2 = parse_config("2c1b2l64r")  # 2 units per kind
        mrt = ModuloReservationTable(m2, ii=1)
        mrt.reserve_fu(0, FuKind.INT, 0)
        assert mrt.fu_free(0, FuKind.INT, 0)
        mrt.reserve_fu(0, FuKind.INT, 0)
        assert not mrt.fu_free(0, FuKind.INT, 0)

    def test_usage_counter(self, m4):
        mrt = ModuloReservationTable(m4, ii=4)
        mrt.reserve_fu(0, FuKind.INT, 0)
        mrt.reserve_fu(0, FuKind.INT, 2)
        assert mrt.fu_usage(0, FuKind.INT) == 2


class TestBuses:
    def test_transfer_occupies_latency_slots(self, m4):
        mrt = ModuloReservationTable(m4, ii=4)
        mrt.reserve_bus(0)  # occupies slots 0 and 1 (latency 2)
        assert not mrt.bus_free(1)
        assert mrt.bus_free(2)

    def test_wrap_around_occupancy(self, m4):
        mrt = ModuloReservationTable(m4, ii=4)
        mrt.reserve_bus(3)  # slots 3 and 0
        assert not mrt.bus_free(0)
        assert not mrt.bus_free(3)
        assert mrt.bus_free(1)

    def test_capacity_matches_paper_formula(self, m4):
        # II=4, latency 2, 1 bus -> exactly 2 transfers fit.
        mrt = ModuloReservationTable(m4, ii=4)
        mrt.reserve_bus(0)
        mrt.reserve_bus(2)
        for cycle in range(4):
            assert not mrt.bus_free(cycle)

    def test_two_buses_double_capacity(self):
        m = parse_config("4c2b2l64r")
        mrt = ModuloReservationTable(m, ii=2)
        mrt.reserve_bus(0)
        mrt.reserve_bus(0)  # second bus
        assert not mrt.bus_free(0)

    def test_latency_longer_than_ii_unschedulable(self):
        m = parse_config("4c2b4l64r")  # latency 4
        mrt = ModuloReservationTable(m, ii=3)
        assert not mrt.bus_free(0)
        with pytest.raises(MrtError):
            mrt.reserve_bus(0)

    def test_latency_equal_to_ii(self):
        m = parse_config("4c2b4l64r")
        mrt = ModuloReservationTable(m, ii=4)
        mrt.reserve_bus(1)  # fills one bus entirely
        mrt.reserve_bus(0)  # second bus
        with pytest.raises(MrtError):
            mrt.reserve_bus(2)

    def test_bus_indices_returned(self, m4):
        mrt = ModuloReservationTable(m4, ii=4)
        assert mrt.reserve_bus(0) == 0

    def test_invalid_ii_rejected(self, m4):
        with pytest.raises(MrtError):
            ModuloReservationTable(m4, ii=0)
