"""Register pressure estimation."""


from repro.core.plan import EMPTY_PLAN
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config, unified_machine
from repro.machine.resources import OpClass
from repro.partition.partition import Partition
from repro.schedule.placed import build_placed_graph
from repro.schedule.registers import fits_registers, max_live
from repro.schedule.scheduler import schedule


def kernel_for(ddg, machine, ii, mapping=None, check_registers=False):
    if mapping is None:
        part = Partition(ddg, {u: 0 for u in ddg.node_ids()}, machine.n_clusters)
    else:
        part = Partition(
            ddg,
            {ddg.node_by_name(k).uid: v for k, v in mapping.items()},
            machine.n_clusters,
        )
    graph = build_placed_graph(ddg, part, machine, EMPTY_PLAN)
    return schedule(graph, machine, ii, check_registers=check_registers)


class TestMaxLive:
    def test_chain_needs_few_registers(self, chain_ddg):
        m = unified_machine()
        kernel = kernel_for(chain_ddg, m, ii=3)
        (pressure,) = max_live(kernel)
        assert 1 <= pressure <= 3

    def test_long_lifetimes_cost_more_at_small_ii(self):
        """A value alive across k windows costs ~k registers."""
        b = DdgBuilder()
        b.int_op("p")
        b.op("d", OpClass.FP_DIV)  # latency 18
        b.dep("p", "d")
        b.fp_op("sink")
        b.dep("d", "sink").dep("p", "sink")
        g = b.build()
        m = unified_machine()
        small = kernel_for(g, m, ii=2)
        large = kernel_for(g, m, ii=12)
        assert max_live(small)[0] > max_live(large)[0]

    def test_stores_produce_no_value(self):
        b = DdgBuilder()
        b.int_op("a").store("st")
        b.dep("a", "st")
        g = b.build()
        m = unified_machine()
        kernel = kernel_for(g, m, ii=1)
        (pressure,) = max_live(kernel)
        assert pressure == 1  # only a's value

    def test_cross_cluster_value_charged_in_consumer_cluster(self):
        m = parse_config("2c1b2l64r")
        b = DdgBuilder()
        b.int_op("p").fp_op("c")
        b.dep("p", "c")
        g = b.build()
        kernel = kernel_for(g, m, ii=2, mapping={"p": 0, "c": 1})
        pressure = max_live(kernel)
        assert pressure[0] >= 1  # p's value feeding the bus
        assert pressure[1] >= 1  # the broadcast value landing in c's cluster

    def test_fits_registers_thresholds(self, chain_ddg):
        m_big = unified_machine(registers=64)
        assert fits_registers(kernel_for(chain_ddg, m_big, ii=3))
        m_tiny = unified_machine(registers=1)
        kernel = kernel_for(chain_ddg, m_tiny, ii=3)
        assert not fits_registers(kernel)
