"""``repro top``: bucket-delta percentiles and the pure renderer."""

import io

from repro.obs.metrics import LOG_SECONDS_BOUNDS
from repro.serve.top import (
    Sample,
    percentile_from_buckets,
    render_dashboard,
    run_top,
)


def _stats(done=10, queued=1, running=2, counts=None, hits=4, misses=6):
    bounds = list(LOG_SECONDS_BOUNDS)
    counts = counts if counts is not None else [0] * (len(bounds) + 1)
    return {
        "jobs": {"queued": queued, "running": running, "done": done},
        "admission": {"queue_depth": queued + running, "queue_limit": 256,
                      "draining": False},
        "cache": {"hits": hits, "misses": misses, "entries": 12},
        "shards": [
            {"id": 0, "up": True, "entries": 7},
            {"id": 1, "up": False, "entries": 0},
        ],
        "metrics": {
            "serve.http.request_seconds": {
                "type": "histogram",
                "bounds": bounds,
                "counts": counts,
                "count": sum(counts),
                "sum": 0.0,
                "max": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            },
            "serve.deduped": {"type": "counter", "value": 3.0},
            "admission.rejected.queue_full": {"type": "counter", "value": 2.0},
        },
    }


def _sample(at, done=10, counts=None, requests=0.0):
    return Sample(
        at=at,
        stats=_stats(done=done, counts=counts),
        exposition={"repro_serve_http_requests_total": requests},
    )


class TestPercentiles:
    def test_empty_is_zero(self):
        assert percentile_from_buckets([0.1, 1.0], [0, 0, 0], 0.5) == 0.0

    def test_single_bucket(self):
        assert percentile_from_buckets([0.1, 1.0], [0, 5, 0], 0.5) == 1.0

    def test_spread(self):
        bounds = [0.001, 0.01, 0.1]
        counts = [50, 40, 10, 0]  # overflow slot empty
        assert percentile_from_buckets(bounds, counts, 0.50) == 0.001
        assert percentile_from_buckets(bounds, counts, 0.95) == 0.1

    def test_overflow_reports_last_finite_bound(self):
        assert percentile_from_buckets([0.1], [0, 9], 0.5) == 0.1


class TestRender:
    def test_first_frame_needs_two_samples_for_rates(self):
        frame = render_dashboard(_sample(at=100.0), None, "http://x:1")
        assert "repro top — http://x:1" in frame
        assert "(need two samples)" in frame
        assert "lifetime" in frame  # latency falls back to totals

    def test_rates_come_from_deltas(self):
        counts_before = [10, 0] + [0] * (len(LOG_SECONDS_BOUNDS) - 1)
        counts_after = [10, 20] + [0] * (len(LOG_SECONDS_BOUNDS) - 1)
        before = _sample(at=100.0, done=10, counts=counts_before, requests=50)
        after = _sample(at=102.0, done=16, counts=counts_after, requests=70)
        frame = render_dashboard(after, before, "http://x:1")
        assert "3.0 jobs/s" in frame
        assert "10.0 req/s" in frame
        # Window percentiles over the delta (20 obs in bucket 2 only).
        assert "window" in frame
        assert "20 requests" in frame

    def test_restart_resets_fall_back_to_totals(self):
        counts_before = [30] + [0] * len(LOG_SECONDS_BOUNDS)
        counts_after = [5] + [0] * len(LOG_SECONDS_BOUNDS)  # < before
        before = _sample(at=100.0, counts=counts_before)
        after = _sample(at=102.0, counts=counts_after)
        frame = render_dashboard(after, before, "http://x:1")
        assert "5 requests" in frame

    def test_shard_health_and_cache_line(self):
        frame = render_dashboard(_sample(at=1.0), None, "u")
        assert "#0 up (7)" in frame
        assert "#1 DOWN (0)" in frame
        assert " 40.0% hits" in frame
        assert "deduped 3" in frame
        assert "rejected 2" in frame


class TestLiveLoop:
    def test_once_against_a_real_server(self, tmp_path):
        from repro.serve.cluster import ServeCluster

        with ServeCluster(
            root=tmp_path, shards=1, replication=1, executor="thread",
            workers=1, http=True,
        ) as cluster:
            out = io.StringIO()
            code = run_top(cluster.url, once=True, out=out)
            assert code == 0
            frame = out.getvalue()
            assert f"repro top — {cluster.url}" in frame
            assert "queue" in frame

    def test_unreachable_server_exits_nonzero(self):
        assert run_top("http://127.0.0.1:9", once=True, out=io.StringIO()) == 1
