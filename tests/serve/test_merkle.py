"""Merkle trees over entry digests."""

from repro.serve.merkle import MerkleTree, diff_buckets, diff_keys


def test_same_entries_same_root():
    a = MerkleTree({"aa1": "d1", "bb2": "d2"})
    b = MerkleTree({"bb2": "d2", "aa1": "d1"})  # insertion order irrelevant
    assert a.root == b.root
    assert a == b
    assert diff_buckets(a, b) == []


def test_empty_trees_agree():
    assert MerkleTree({}).root == MerkleTree({}).root
    assert MerkleTree({}).n_keys == 0


def test_changed_digest_detected():
    a = MerkleTree({"aa1": "d1", "bb2": "d2"})
    b = MerkleTree({"aa1": "d1", "bb2": "OTHER"})
    assert a.root != b.root
    assert diff_keys(a, b) == {"bb2"}


def test_missing_key_detected():
    a = MerkleTree({"aa1": "d1", "bb2": "d2"})
    b = MerkleTree({"aa1": "d1"})
    assert diff_keys(a, b) == {"bb2"}


def test_diff_localised_to_buckets():
    """Keys in untouched buckets never show up in the diff."""
    entries = {f"{i:02x}{'0' * 62}": f"d{i}" for i in range(64)}
    changed = dict(entries)
    changed["3f" + "0" * 62] = "DIVERGED"
    a, b = MerkleTree(entries), MerkleTree(changed)
    assert diff_keys(a, b) == {"3f" + "0" * 62}
    assert len(diff_buckets(a, b)) == 1


def test_wire_form():
    tree = MerkleTree({"aa1": "d1"})
    wire = tree.to_wire()
    assert wire["root"] == tree.root
    assert wire["n_keys"] == 1
    assert len(wire["buckets"]) == 1


def test_non_hex_keys_still_bucket():
    tree = MerkleTree({"not-hex!": "d"})
    assert tree.n_keys == 1
