"""The acceptance scenario from the serving-layer issue.

An in-process 3-shard cluster (replication factor 2) serves a bench
matrix with results semantically identical to the local single-process
path; killing one shard mid-run returns zero wrong results; and an
anti-entropy sweep restores the lost replicas, asserted via Merkle
digests.
"""

import pytest

from repro.engine.fingerprint import result_fingerprint
from repro.engine.jobs import CompileJob, Outcome
from repro.machine.config import parse_config
from repro.pipeline.driver import Scheme, compile_loop
from repro.serve.cluster import ServeCluster
from repro.workloads.specfp import benchmark_loops

MACHINE = "4c1b4l64r"
SCHEMES = (Scheme.BASELINE, Scheme.REPLICATION)
BENCHMARKS = ("tomcatv", "mgrid")
LOOPS_PER_BENCHMARK = 2


def _matrix() -> list[CompileJob]:
    """A small but real slice of the bench matrix: 2 benchmarks x 2
    loops x 2 schemes = 8 distinct jobs."""
    jobs = []
    for benchmark in BENCHMARKS:
        for i, loop in enumerate(
            benchmark_loops(benchmark, limit=LOOPS_PER_BENCHMARK)
        ):
            for scheme in SCHEMES:
                jobs.append(
                    CompileJob(
                        ddg=loop.ddg,
                        machine=MACHINE,
                        scheme=scheme,
                        tag=f"{benchmark}/{i}/{scheme.value}",
                    )
                )
    return jobs


@pytest.fixture(scope="module")
def expected():
    """Local single-process fingerprints, the ground truth."""
    config = parse_config(MACHINE)
    return {
        job.content_hash(): result_fingerprint(
            compile_loop(job.ddg, config, scheme=job.scheme)
        )
        for job in _matrix()
    }


def _fingerprints(results):
    return {
        r.key: result_fingerprint(r.result) for r in results
    }


def test_three_shard_cluster_acceptance(tmp_path, expected):
    jobs = _matrix()
    with ServeCluster(
        root=tmp_path / "cluster", shards=3, replication=2, executor="thread",
        workers=2,
    ) as cluster:
        # -- the matrix, served -------------------------------------------
        results = cluster.run_jobs(jobs)
        assert len(results) == len(jobs)
        assert all(r.outcome is Outcome.OK for r in results)
        assert _fingerprints(results) == expected
        assert cluster.replication_ok(), "fresh run must leave replicas in sync"

        # -- kill one shard mid-run: zero wrong results -------------------
        cluster.kill_shard(0, wipe=True)
        cluster.forget_records()  # resubmissions re-walk the cache path
        survivors = cluster.run_jobs(jobs)
        assert all(r.outcome is Outcome.OK for r in survivors)
        assert _fingerprints(survivors) == expected
        # replication factor 2 means every key kept one live replica,
        # so the re-run is served from cache, not recomputed
        assert all(r.cached for r in survivors)

        # -- anti-entropy rebuilds the lost shard -------------------------
        cluster.restore_shard(0)
        assert not cluster.replication_ok()
        report = cluster.sweep()
        assert report.copies_written > 0
        assert report.dropped_corrupt == 0
        # asserted via Merkle digests: every segment's live owners now
        # hold byte-identical slices
        for _segment, trees in cluster.cache.segment_trees():
            assert len({tree.root for tree in trees.values()}) <= 1
        assert cluster.replication_ok()

        # a second sweep finds nothing left to fix
        assert cluster.sweep().copies_written == 0


def test_cluster_dedupes_concurrent_submissions(tmp_path):
    jobs = _matrix()[:2]
    with ServeCluster(
        root=tmp_path / "dedupe", shards=3, replication=2, executor="thread",
        workers=2,
    ) as cluster:
        first = cluster.run_jobs(jobs + jobs)
        assert len(first) == 4
        # same key submitted twice resolves to the same record/result
        assert first[0].key == first[2].key
        assert result_fingerprint(first[0].result) == result_fingerprint(
            first[2].result
        )


def test_single_shard_cluster_is_the_local_path(tmp_path):
    """The degenerate deployment writes the plain local cache layout."""
    job = _matrix()[0]
    with ServeCluster(
        root=tmp_path / "one", shards=1, replication=1, executor="thread",
        workers=1,
    ) as cluster:
        [served] = cluster.run_jobs([job])
        assert served.outcome is Outcome.OK
    key = job.content_hash()
    assert (tmp_path / "one" / key[:2] / f"{key}.pkl").exists()
    local = compile_loop(job.ddg, parse_config(MACHINE), scheme=job.scheme)
    assert result_fingerprint(served.result) == result_fingerprint(local)
