"""Acceptance: one served job produces ONE stitched trace.

The distributed-tracing contract of the serve boundary: a client-side
``client.request`` span, the server's ``serve.request``, the manager's
``serve.job``, and the worker's ``engine.job`` (plus the pipeline pass
spans under it) must share a single trace id and parent each other
correctly — across the HTTP hop via the ``traceparent`` header, and
across the executor hop via the runner's traceparent argument (thread
pool) or the shipped-spans adopt path (process pool).

``ServeCluster`` is in-process, so client, server and thread-pool
worker spans all land in one tracer and the whole tree can be drained
and checked; the process-executor variant additionally exercises
worker-side span shipping + re-adoption.
"""

import pytest

from repro import obs
from repro.engine.jobs import CompileJob
from repro.pipeline.driver import Scheme
from repro.serve.client import ServeClient
from repro.serve.cluster import ServeCluster
from repro.workloads.patterns import daxpy, dot_product

MACHINE = "2c1b2l64r"


def _job(ddg=None, tag="stitch/daxpy"):
    return CompileJob(
        ddg=ddg if ddg is not None else daxpy(),
        machine=MACHINE,
        scheme=Scheme.REPLICATION,
        tag=tag,
    )


def _by_name(spans, name):
    return [span for span in spans if span.name == name]


def _serve_and_drain(tmp_path, executor, ddg, tag):
    """Submit one job over HTTP under tracing; return (spans, events)."""
    with obs.force_enabled():
        obs.tracer().drain()  # stray spans from earlier tests
        with ServeCluster(
            root=tmp_path, shards=1, replication=1, executor=executor,
            workers=1, http=True,
        ) as cluster:
            client = ServeClient(cluster.url, client_id="stitch")
            submitted = client.submit(_job(ddg=ddg, tag=tag))
            client.wait(submitted["key"], timeout=120.0)
            # events() blocks until the terminal event, which the
            # manager emits only after the serve.job span is finished —
            # so every span is exported once this returns.
            events = client.events(submitted["key"])
        spans = obs.tracer().drain()
    return spans, events


class TestThreadExecutorStitching:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        return _serve_and_drain(
            tmp_path_factory.mktemp("stitch-thread"), "thread", daxpy(),
            "stitch/daxpy",
        )

    def test_one_trace_spans_client_server_and_worker(self, traced):
        spans, _events = traced
        submit = [
            span
            for span in _by_name(spans, "client.request")
            if span.attrs.get("method") == "POST"
        ]
        assert len(submit) == 1
        trace_id = submit[0].trace_id
        assert trace_id

        requests = [
            span
            for span in _by_name(spans, "serve.request")
            if span.trace_id == trace_id
        ]
        jobs = [
            span for span in _by_name(spans, "serve.job")
            if span.trace_id == trace_id
        ]
        engine = [
            span for span in _by_name(spans, "engine.job")
            if span.trace_id == trace_id
        ]
        assert len(requests) == 1, "POST serve.request joins the client trace"
        assert len(jobs) == 1
        assert len(engine) == 1

    def test_parent_links_are_correct(self, traced):
        spans, _events = traced
        submit = [
            span
            for span in _by_name(spans, "client.request")
            if span.attrs.get("method") == "POST"
        ][0]
        request = [
            span
            for span in _by_name(spans, "serve.request")
            if span.trace_id == submit.trace_id
        ][0]
        job = _by_name(spans, "serve.job")[0]
        engine = [
            span for span in _by_name(spans, "engine.job")
            if span.trace_id == submit.trace_id
        ][0]
        assert submit.parent_id is None  # the trace root
        assert request.parent_id == submit.span_id
        assert job.parent_id == request.span_id
        assert engine.parent_id == job.span_id

    def test_pipeline_pass_spans_join_the_trace(self, traced):
        spans, _events = traced
        trace_id = _by_name(spans, "serve.job")[0].trace_id
        members = [span for span in spans if span.trace_id == trace_id]
        # client + request + job + engine.job + at least one pass span.
        assert len(members) >= 5
        assert any(span.name == "pipeline.attempt" for span in members)

    def test_ndjson_events_carry_the_trace(self, traced):
        spans, events = traced
        trace_id = _by_name(spans, "serve.job")[0].trace_id
        assert events, "expected a started + terminal event"
        for event in events:
            assert event["trace"] == trace_id
            assert event["span"] == _by_name(spans, "serve.job")[0].span_id

    def test_polling_requests_root_their_own_traces(self, traced):
        spans, _events = traced
        job_trace = _by_name(spans, "serve.job")[0].trace_id
        polls = [
            span
            for span in _by_name(spans, "client.request")
            if span.attrs.get("method") == "GET"
        ]
        assert polls, "client.wait must have polled"
        assert all(span.trace_id != job_trace for span in polls)


class TestProcessExecutorStitching:
    def test_shipped_worker_spans_are_adopted_into_the_trace(self, tmp_path):
        spans, _events = _serve_and_drain(
            tmp_path, "process", daxpy(), "stitch/process",
        )
        job = _by_name(spans, "serve.job")[0]
        engine = [
            span for span in _by_name(spans, "engine.job")
            if span.trace_id == job.trace_id
        ]
        assert len(engine) == 1
        assert engine[0].parent_id == job.span_id
        assert engine[0].attrs.get("worker") is True
        assert engine[0].pid != job.pid, "engine.job ran in a worker process"
        # The worker's whole pass tree came along and was re-idd locally.
        members = [span for span in spans if span.trace_id == job.trace_id]
        assert any(span.name == "pipeline.attempt" for span in members)
        assert len({span.span_id for span in members}) == len(members)


class TestCacheHitStitching:
    def test_cache_hit_joins_the_submitting_request_trace(self, tmp_path):
        with obs.force_enabled():
            obs.tracer().drain()
            with ServeCluster(
                root=tmp_path, shards=1, replication=1, executor="thread",
                workers=1, http=True,
            ) as cluster:
                client = ServeClient(cluster.url, client_id="stitch")
                job = _job(ddg=dot_product(), tag="stitch/cachehit")
                first = client.submit(job)
                client.wait(first["key"], timeout=120.0)
                client.events(first["key"])
                obs.tracer().drain()
                # Drop the record so the resubmission walks the cache
                # path (not dedupe) inside a fresh request span.
                cluster.forget_records()
                second = client.submit(job)
                events = client.events(first["key"])
            spans = obs.tracer().drain()
        assert second["status"] == "done"
        assert second["cached"] is True
        resubmit = [
            span
            for span in _by_name(spans, "client.request")
            if span.attrs.get("method") == "POST"
        ]
        assert len(resubmit) == 1
        request = [
            span
            for span in _by_name(spans, "serve.request")
            if span.trace_id == resubmit[0].trace_id
        ]
        assert len(request) == 1
        # The payload and the cache_hit event are stamped with the
        # resubmitting request's trace.
        assert second.get("trace") == resubmit[0].trace_id
        assert events[-1]["kind"] == "cache_hit"
        assert events[-1]["trace"] == resubmit[0].trace_id
        assert events[-1]["span"] == request[0].span_id

    def test_dedupe_keeps_the_original_trace(self, tmp_path):
        with obs.force_enabled():
            obs.tracer().drain()
            with ServeCluster(
                root=tmp_path, shards=1, replication=1, executor="thread",
                workers=1, http=True,
            ) as cluster:
                client = ServeClient(cluster.url, client_id="stitch")
                job = _job(ddg=dot_product(), tag="stitch/dedupe")
                first = client.submit(job)
                client.wait(first["key"], timeout=120.0)
                client.events(first["key"])
                duplicate = client.submit(job)
            spans = obs.tracer().drain()
        job_span = _by_name(spans, "serve.job")[0]
        # The duplicate attaches to the existing record: its payload
        # still names the original compile's trace.
        assert duplicate.get("trace") == job_span.trace_id
