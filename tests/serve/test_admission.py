"""Admission control: bounded queueing, per-client caps, drain."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionController


class TestQueueBound:
    def test_admits_until_full(self):
        control = AdmissionController(max_queue=3, max_inflight_per_client=10)
        for i in range(3):
            assert control.admit(f"c{i}").admitted
        decision = control.admit("c9")
        assert not decision.admitted
        assert decision.reason == "queue_full"
        assert decision.retry_after > 0
        assert decision.http_status == 429

    def test_release_frees_a_slot(self):
        control = AdmissionController(max_queue=1, max_inflight_per_client=10)
        assert control.admit("a").admitted
        assert not control.admit("b").admitted
        control.release("a")
        assert control.admit("b").admitted
        assert control.depth == 1

    def test_admitted_decision_is_clean(self):
        decision = AdmissionController().admit("x")
        assert decision.admitted
        assert decision.reason == ""
        assert decision.retry_after == 0.0
        assert decision.http_status == 201


class TestPerClientCap:
    def test_one_client_cannot_starve_others(self):
        control = AdmissionController(max_queue=100, max_inflight_per_client=2)
        assert control.admit("greedy").admitted
        assert control.admit("greedy").admitted
        capped = control.admit("greedy")
        assert not capped.admitted
        assert capped.reason == "client_capped"
        # a different client still gets in
        assert control.admit("polite").admitted

    def test_release_is_per_client(self):
        control = AdmissionController(max_queue=100, max_inflight_per_client=1)
        assert control.admit("a").admitted
        assert control.admit("b").admitted
        control.release("a")
        assert control.admit("a").admitted
        assert not control.admit("b").admitted


class TestDrain:
    def test_drain_refuses_everything(self):
        control = AdmissionController()
        control.start_drain()
        decision = control.admit("x")
        assert not decision.admitted
        assert decision.reason == "draining"
        assert decision.http_status == 503
        control.stop_drain()
        assert control.admit("x").admitted

    def test_draining_property(self):
        control = AdmissionController()
        assert not control.draining
        control.start_drain()
        assert control.draining


class TestMetricsAndValidation:
    def test_counters_and_gauge(self):
        registry = MetricsRegistry()
        control = AdmissionController(
            max_queue=1, max_inflight_per_client=1, metrics=registry
        )
        control.admit("a")
        control.admit("b")
        snapshot = registry.snapshot()
        assert snapshot["admission.admitted"] == 1
        assert snapshot["admission.rejected.queue_full"] == 1
        assert snapshot["admission.queue_depth"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionController(max_inflight_per_client=0)

    def test_release_never_goes_negative(self):
        control = AdmissionController()
        control.release("ghost")
        assert control.depth == 0
