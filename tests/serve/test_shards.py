"""The sharded, replicated cache: routing, repair, anti-entropy."""

import hashlib

import pytest

from repro.engine.fingerprint import result_fingerprint
from repro.machine.config import parse_config
from repro.pipeline.driver import Scheme, compile_loop
from repro.serve.shards import ShardedCache
from repro.workloads.patterns import daxpy


@pytest.fixture(scope="module")
def result():
    """One real CompileResult to store under synthetic keys."""
    return compile_loop(daxpy(), parse_config("2c1b2l64r"), scheme=Scheme.BASELINE)


def _key(i: int) -> str:
    return hashlib.sha256(f"entry-{i}".encode()).hexdigest()


def _fresh(tmp_path, **kwargs) -> ShardedCache:
    defaults = dict(n_shards=3, replication=2, vnodes=8)
    defaults.update(kwargs)
    return ShardedCache(tmp_path / "store", **defaults)


class TestRoutingAndReplication:
    def test_put_writes_to_every_owner(self, tmp_path, result):
        cache = _fresh(tmp_path)
        key = _key(1)
        cache.put(key, result)
        owners = cache.ring.preference(key)
        assert len(owners) == 2
        for shard_id in owners:
            assert cache.shards[shard_id].digest(key) is not None
        for shard_id in set(range(3)) - set(owners):
            assert cache.shards[shard_id].digest(key) is None

    def test_replicas_byte_identical(self, tmp_path, result):
        cache = _fresh(tmp_path)
        key = _key(2)
        cache.put(key, result)
        digests = {
            cache.shards[s].digest(key) for s in cache.ring.preference(key)
        }
        assert len(digests) == 1

    def test_get_round_trip(self, tmp_path, result):
        cache = _fresh(tmp_path)
        key = _key(3)
        assert cache.get(key) is None
        cache.put(key, result)
        fetched = cache.get(key)
        assert fetched is not None
        assert result_fingerprint(fetched) == result_fingerprint(result)
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_single_shard_uses_root_directly(self, tmp_path, result):
        """The degenerate deployment shares the plain cache layout."""
        cache = _fresh(tmp_path, n_shards=1, replication=1)
        key = _key(4)
        cache.put(key, result)
        assert cache.shards[0].root == tmp_path / "store"
        assert (tmp_path / "store" / key[:2] / f"{key}.pkl").exists()


class TestReadRepair:
    def test_missing_replica_restored_on_get(self, tmp_path, result):
        cache = _fresh(tmp_path)
        key = _key(10)
        cache.put(key, result)
        owners = cache.ring.preference(key)
        victim = cache.shards[owners[-1]]
        victim.remove(key)
        assert victim.digest(key) is None
        assert cache.get(key) is not None
        assert victim.digest(key) is not None

    def test_divergent_replica_rewritten_on_get(self, tmp_path, result):
        cache = _fresh(tmp_path)
        key = _key(11)
        cache.put(key, result)
        owners = cache.ring.preference(key)
        good = cache.shards[owners[0]].digest(key)
        victim = cache.shards[owners[-1]]
        victim.write_bytes(key, b"torn garbage")
        assert cache.get(key) is not None
        assert victim.digest(key) == good

    def test_down_shard_served_by_replica(self, tmp_path, result):
        cache = _fresh(tmp_path)
        key = _key(12)
        cache.put(key, result)
        primary = cache.ring.preference(key)[0]
        cache.kill_shard(primary, wipe=True)
        fetched = cache.get(key)
        assert fetched is not None
        assert result_fingerprint(fetched) == result_fingerprint(result)

    def test_all_owners_down_is_a_miss(self, tmp_path, result):
        cache = _fresh(tmp_path)
        key = _key(13)
        cache.put(key, result)
        for shard_id in cache.ring.preference(key):
            cache.kill_shard(shard_id, wipe=False)
        assert cache.get(key) is None


class TestAntiEntropy:
    def test_sweep_rebuilds_wiped_shard(self, tmp_path, result):
        cache = _fresh(tmp_path)
        keys = [_key(i) for i in range(20, 40)]
        for key in keys:
            cache.put(key, result)
        assert cache.replication_ok()
        cache.kill_shard(0, wipe=True)
        cache.restore_shard(0)
        assert not cache.replication_ok()
        report = cache.sweep()
        assert report.copies_written > 0
        assert cache.replication_ok()
        # every key shard 0 owns is back, byte-identical to its peer
        for key in keys:
            owners = cache.ring.preference(key)
            if 0 in owners:
                peer = next(s for s in owners if s != 0)
                assert cache.shards[0].digest(key) == cache.shards[peer].digest(key)

    def test_sweep_idempotent(self, tmp_path, result):
        cache = _fresh(tmp_path)
        for i in range(50, 60):
            cache.put(_key(i), result)
        first = cache.sweep()
        assert first.divergent_segments == 0
        assert first.copies_written == 0

    def test_sweep_repairs_corrupt_replica(self, tmp_path, result):
        cache = _fresh(tmp_path)
        key = _key(70)
        cache.put(key, result)
        owners = cache.ring.preference(key)
        cache.shards[owners[1]].write_bytes(key, b"garbage")
        report = cache.sweep()
        assert report.copies_written == 1
        digests = {cache.shards[s].digest(key) for s in owners}
        assert len(digests) == 1

    def test_sweep_drops_unrecoverable_entries(self, tmp_path):
        cache = _fresh(tmp_path)
        key = _key(71)
        # diverging garbage: identical torn bytes would keep the Merkle
        # roots equal and the segment would (correctly) be skipped
        for i, shard_id in enumerate(cache.ring.preference(key)):
            cache.shards[shard_id].write_bytes(key, b"torn copy %d" % i)
        report = cache.sweep()
        assert report.dropped_corrupt == 2
        assert cache.get(key) is None

    def test_merkle_digests_exposed(self, tmp_path, result):
        cache = _fresh(tmp_path)
        for i in range(80, 90):
            cache.put(_key(i), result)
        for _segment, trees in cache.segment_trees():
            roots = {tree.root for tree in trees.values()}
            assert len(roots) <= 1


class TestStats:
    def test_aggregates_across_shards(self, tmp_path, result):
        cache = _fresh(tmp_path)
        for i in range(5):
            cache.put(_key(100 + i), result)
        stats = cache.stats()
        assert stats.entries == 5 * 2  # replication factor 2
        assert stats.total_bytes > 0

    def test_clear_removes_everything(self, tmp_path, result):
        cache = _fresh(tmp_path)
        for i in range(3):
            cache.put(_key(200 + i), result)
        assert cache.clear() == 6
        assert cache.stats().entries == 0
