"""The consistent-hash ring."""

import collections
import hashlib

import pytest

from repro.serve.hashring import HashRing, ring_position


def _keys(n):
    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]


class TestPreference:
    def test_deterministic_across_instances(self):
        a = HashRing(4, replication=2)
        b = HashRing(4, replication=2)
        for key in _keys(50):
            assert a.preference(key) == b.preference(key)

    def test_distinct_owners(self):
        ring = HashRing(5, replication=3)
        for key in _keys(100):
            owners = ring.preference(key)
            assert len(owners) == 3
            assert len(set(owners)) == 3

    def test_replication_clamped_to_shards(self):
        ring = HashRing(2, replication=5)
        assert ring.replication == 2
        assert len(ring.preference("abc")) == 2

    def test_primary_is_first(self):
        ring = HashRing(3, replication=2)
        for key in _keys(20):
            assert ring.primary(key) == ring.preference(key)[0]

    def test_single_shard(self):
        ring = HashRing(1, replication=1)
        assert all(ring.preference(key) == (0,) for key in _keys(10))

    def test_distribution_roughly_balanced(self):
        ring = HashRing(4, replication=1, vnodes=64)
        counts = collections.Counter(ring.primary(key) for key in _keys(2000))
        assert set(counts) == {0, 1, 2, 3}
        assert min(counts.values()) > 2000 / 4 / 3  # within 3x of fair

    def test_stability_under_shard_growth(self):
        """Adding a shard remaps only a fraction of keys (consistency)."""
        before = HashRing(4, replication=1)
        after = HashRing(5, replication=1)
        keys = _keys(1000)
        moved = sum(
            1 for key in keys if before.primary(key) != after.primary(key)
        )
        # naive modulo hashing would remap ~80%; the ring should move
        # roughly 1/5th of keys to the new shard
        assert moved < 1000 * 0.45


class TestSegments:
    def test_owners_match_preference(self):
        ring = HashRing(3, replication=2, vnodes=8)
        for key in _keys(300):
            segment = ring.segment_of(key)
            assert segment.contains(ring_position(key))
            assert segment.owners == ring.preference(key)

    def test_segments_cover_ring_exactly_once(self):
        ring = HashRing(3, replication=2, vnodes=8)
        segments = ring.segments()
        assert len(segments) == 3 * 8
        for key in _keys(200):
            position = ring_position(key)
            holders = [s for s in segments if s.contains(position)]
            assert len(holders) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replication=0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)
