"""The HTTP API, end to end over a real socket."""

import http.client
import json

import pytest

from repro.engine.fingerprint import result_fingerprint
from repro.engine.jobs import CompileJob
from repro.machine.config import parse_config
from repro.pipeline.driver import Scheme, compile_loop
from repro.serve.client import ServeClient, ServeError
from repro.serve.cluster import ServeCluster
from repro.workloads.patterns import daxpy, dot_product, stencil5

MACHINE = "2c1b2l64r"


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-http")
    with ServeCluster(
        root=root, shards=2, replication=2, executor="thread", workers=2,
        max_inflight=4,  # well below queue_limit so client_capped is reachable
        http=True,
    ) as up:
        yield up


@pytest.fixture()
def client(cluster):
    return ServeClient(cluster.url, client_id="pytest")


def _job(scheme=Scheme.REPLICATION, ddg=None, tag="http/test"):
    return CompileJob(
        ddg=ddg if ddg is not None else daxpy(),
        machine=MACHINE,
        scheme=scheme,
        tag=tag,
    )


class TestSubmitAndPoll:
    def test_submit_wait_matches_local_compile(self, client):
        job = _job()
        submitted = client.submit(job)
        assert submitted["key"] == job.content_hash()
        done = client.wait(submitted["key"], timeout=120.0)
        assert done["status"] == "done"
        assert done["outcome"] == "ok"
        local = compile_loop(
            daxpy(), parse_config(MACHINE), scheme=Scheme.REPLICATION
        )
        assert done["fingerprint"] == result_fingerprint(local)

    def test_resubmit_is_idempotent(self, client):
        job = _job(scheme=Scheme.BASELINE, tag="http/idempotent")
        first = client.submit(job)
        client.wait(first["key"], timeout=120.0)
        again = client.submit(job)
        assert again["key"] == first["key"]
        assert again["status"] == "done"

    def test_submit_by_key_completes_from_cache(self, client):
        job = _job(ddg=dot_product(), tag="http/bykey")
        client.submit(job)
        client.wait(job.content_hash(), timeout=120.0)
        status, payload = client.submit_key(job.content_hash())
        assert status == 200
        assert payload["status"] == "done"

    def test_submit_by_unknown_key_is_404(self, client):
        status, payload = client.submit_key("0" * 64)
        assert status == 404
        assert "error" in payload

    def test_status_of_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client.status("f" * 64)
        assert err.value.status == 404


class TestEvents:
    def test_stream_replays_history_and_terminates(self, client):
        job = _job(ddg=dot_product(), scheme=Scheme.BASELINE, tag="http/events")
        client.submit(job)
        client.wait(job.content_hash(), timeout=120.0)
        events = client.events(job.content_hash())
        assert events, "stream must carry at least the terminal event"
        kinds = [event["kind"] for event in events]
        assert kinds[-1] in ("finished", "cache_hit")
        assert all(event["key"] == job.content_hash() for event in events)

    def test_events_of_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client.events("a" * 64)
        assert err.value.status == 404


class TestProtocolErrors:
    def _raw(self, cluster, method, path, body=None, headers=None):
        connection = http.client.HTTPConnection(
            "127.0.0.1", int(cluster.url.rsplit(":", 1)[1]), timeout=30
        )
        try:
            connection.request(method, path, body=body, headers=headers or {})
            response = connection.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            connection.close()

    def test_bad_json_body_is_400(self, cluster):
        status, _, body = self._raw(
            cluster, "POST", "/jobs", body=b"{not json",
            headers={"Content-Length": "9"},
        )
        assert status == 400
        assert b"bad JSON" in body

    def test_bad_job_payload_is_400(self, cluster):
        raw = json.dumps({"job": {"nonsense": True}}).encode()
        status, _, body = self._raw(
            cluster, "POST", "/jobs", body=raw,
            headers={"Content-Length": str(len(raw))},
        )
        assert status == 400
        assert b"bad job payload" in body

    def test_wrong_method_is_405(self, cluster):
        assert self._raw(cluster, "DELETE", "/jobs")[0] == 405
        assert self._raw(cluster, "POST", "/jobs/" + "0" * 64)[0] == 405

    def test_unknown_route_is_404(self, cluster):
        assert self._raw(cluster, "GET", "/nope")[0] == 404

    def test_health_and_stats(self, client):
        assert client.health()["status"] == "ok"
        stats = client.stats()
        assert stats["ring"] == {"shards": 2, "replication": 2, "vnodes": 16}
        assert stats["admission"]["queue_limit"] >= 1
        assert {shard["id"] for shard in stats["shards"]} == {0, 1}


class TestObservabilityEndpoints:
    def test_stats_metrics_are_typed(self, client):
        client.health()  # at least one observed request before reading
        metrics = client.stats()["metrics"]
        assert metrics, "serve.http instruments register on first request"
        assert all("type" in entry for entry in metrics.values())
        histogram = metrics["serve.http.request_seconds"]
        assert histogram["type"] == "histogram"
        assert len(histogram["counts"]) == len(histogram["bounds"]) + 1
        assert histogram["count"] == sum(histogram["counts"])
        assert histogram["count"] >= 1
        for quantile in ("p50", "p95", "p99"):
            assert histogram[quantile] >= 0.0
        requests = metrics["serve.http.requests"]
        assert requests == {"type": "counter", "value": requests["value"]}

    def test_metrics_endpoint_is_valid_prometheus_text(self, client):
        from repro.obs.prometheus import parse_exposition, validate_exposition

        client.health()
        text = client.metrics()
        assert validate_exposition(text) == []
        samples = parse_exposition(text)
        assert samples["repro_serve_http_requests_total"] >= 1
        assert any(
            key.startswith("repro_serve_http_request_seconds_bucket")
            for key in samples
        )

    def test_metrics_rejects_post(self, cluster):
        connection = http.client.HTTPConnection(
            "127.0.0.1", int(cluster.url.rsplit(":", 1)[1]), timeout=30
        )
        try:
            connection.request("POST", "/metrics")
            assert connection.getresponse().status == 404
        finally:
            connection.close()


class TestBackpressure:
    def test_capped_client_gets_429_with_retry_after(self, cluster):
        admission = cluster.manager.admission
        # occupy every slot this client id is allowed
        for _ in range(admission.max_inflight_per_client):
            assert admission.admit("hog").admitted
        try:
            # a job no other test submits: tags don't enter the content
            # hash, so reusing a ddg+scheme pair would dedupe against an
            # existing record and bypass admission entirely
            hog = ServeClient(cluster.url, client_id="hog")
            status, payload = hog.try_submit(
                _job(ddg=stencil5(), scheme=Scheme.BASELINE, tag="http/hog")
            )
            assert status == 429
            assert payload["error"] == "client_capped"
            assert payload["retry_after"] > 0
            # header form, for well-behaved generic clients
            connection = http.client.HTTPConnection(
                "127.0.0.1", int(cluster.url.rsplit(":", 1)[1]), timeout=30
            )
            try:
                raw = json.dumps(
                    {
                        "job": _job(
                            ddg=stencil5(), scheme=Scheme.BASELINE, tag="http/hog"
                        ).to_wire()
                    }
                ).encode()
                connection.request(
                    "POST", "/jobs", body=raw,
                    headers={"x-repro-client": "hog"},
                )
                response = connection.getresponse()
                response.read()
                assert response.status == 429
                assert response.getheader("Retry-After") is not None
            finally:
                connection.close()
        finally:
            for _ in range(admission.max_inflight_per_client):
                admission.release("hog")

    def test_draining_server_answers_503(self, cluster, client):
        admission = cluster.manager.admission
        admission.start_drain()
        try:
            assert client.health()["status"] == "draining"
            status, payload = client.try_submit(
                _job(ddg=stencil5(), tag="http/drain")
            )
            assert status == 503
            assert payload["error"] == "draining"
        finally:
            admission.stop_drain()
        assert client.health()["status"] == "ok"
