"""Replication subgraphs (Figure 4) on constructed cases."""

import pytest

from repro.core.state import ReplicationState
from repro.core.subgraph import find_replication_subgraph, fits_resources
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config
from repro.partition.partition import Partition


@pytest.fixture
def m2():
    return parse_config("2c1b2l64r")


def state_for(ddg, mapping, machine, ii):
    part = Partition(
        ddg, {ddg.node_by_name(k).uid: v for k, v in mapping.items()},
        machine.n_clusters,
    )
    return ReplicationState(part, machine, ii)


def names(state, uids):
    return {state.ddg.node(u).name for u in uids}


class TestSubgraphDiscovery:
    def test_chain_of_parents_included(self, m2):
        b = DdgBuilder()
        b.int_op("g").int_op("p").int_op("x").fp_op("far")
        b.chain("g", "p", "x")
        b.dep("x", "far")
        g = b.build()
        state = state_for(g, {"g": 0, "p": 0, "x": 0, "far": 1}, m2, ii=4)
        sub = find_replication_subgraph(state, g.node_by_name("x").uid)
        assert names(state, sub.members) == {"x", "p", "g"}

    def test_walk_stops_at_communicated_parent(self, m2):
        b = DdgBuilder()
        b.int_op("g").int_op("x").fp_op("far").fp_op("far2")
        b.dep("g", "x").dep("x", "far").dep("g", "far2")
        g = b.build()
        state = state_for(g, {"g": 0, "x": 0, "far": 1, "far2": 1}, m2, ii=4)
        sub = find_replication_subgraph(state, g.node_by_name("x").uid)
        # g communicates (to far2), so x's subgraph stops at it.
        assert names(state, sub.members) == {"x"}

    def test_load_parents_replicable(self, m2):
        """Loads replicate; their memory parents stay behind (shared cache)."""
        b = DdgBuilder()
        b.store("st").load("ld").fp_op("use").fp_op("far")
        b.mem_dep("st", "ld")
        b.dep("ld", "use").dep("use", "far")
        g = b.build()
        state = state_for(g, {"st": 0, "ld": 0, "use": 0, "far": 1}, m2, ii=4)
        sub = find_replication_subgraph(state, g.node_by_name("use").uid)
        assert names(state, sub.members) == {"use", "ld"}

    def test_destinations_follow_consumers(self, m2):
        b = DdgBuilder()
        b.int_op("p").fp_op("local").fp_op("far")
        b.dep("p", "local").dep("p", "far")
        g = b.build()
        state = state_for(g, {"p": 0, "local": 0, "far": 1}, m2, ii=4)
        sub = find_replication_subgraph(state, g.node_by_name("p").uid)
        assert sub.destinations == {1}
        assert sub.needed[g.node_by_name("p").uid] == {1}

    def test_n_new_instances(self, m2):
        b = DdgBuilder()
        b.int_op("g").int_op("x").fp_op("far")
        b.chain("g", "x")
        b.dep("x", "far")
        g = b.build()
        state = state_for(g, {"g": 0, "x": 0, "far": 1}, m2, ii=4)
        sub = find_replication_subgraph(state, g.node_by_name("x").uid)
        assert sub.n_new_instances == 2


class TestResourceFeasibility:
    def test_full_cluster_blocks_replication(self):
        m = parse_config("4c1b2l64r")  # 1 INT unit per cluster
        b = DdgBuilder()
        b.int_op("p")
        # Fill cluster 1 with 2 INT ops (capacity = 1 unit * II 2).
        b.int_op("f0").int_op("f1")
        b.fp_op("consumer")
        b.dep("p", "consumer")
        g = b.build()
        state = state_for(
            g, {"p": 0, "f0": 1, "f1": 1, "consumer": 1}, m, ii=2
        )
        sub = find_replication_subgraph(state, g.node_by_name("p").uid)
        assert not fits_resources(sub, state)

    def test_free_cluster_allows_replication(self):
        m = parse_config("4c1b2l64r")
        b = DdgBuilder()
        b.int_op("p").fp_op("consumer")
        b.dep("p", "consumer")
        g = b.build()
        state = state_for(g, {"p": 0, "consumer": 1}, m, ii=2)
        sub = find_replication_subgraph(state, g.node_by_name("p").uid)
        assert fits_resources(sub, state)
