"""Loop unrolling transformation."""

import pytest

from repro.core.unroll import UnrolledProfile, unroll_ddg
from repro.ddg.analysis import rec_mii
from repro.ddg.graph import EdgeKind
from repro.machine.config import parse_config
from repro.pipeline.driver import Scheme, compile_loop
from repro.sim.verifier import verify_kernel
from repro.workloads.patterns import daxpy, dot_product


class TestUnrollStructure:
    def test_node_count_scales(self):
        g = daxpy()
        assert len(unroll_ddg(g, 3)) == 3 * len(g)

    def test_factor_one_is_a_copy(self):
        g = daxpy()
        u = unroll_ddg(g, 1)
        assert len(u) == len(g)
        assert u is not g

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            unroll_ddg(daxpy(), 0)

    def test_intra_iteration_edges_stay_within_copies(self):
        g = daxpy()
        u = unroll_ddg(g, 2)
        for edge in u.edges():
            src_copy = u.node(edge.src).name.rsplit("#", 1)[1]
            dst_copy = u.node(edge.dst).name.rsplit("#", 1)[1]
            if edge.distance == 0 and edge.kind is EdgeKind.REGISTER:
                # distance-0 edges never leave their body copy unless
                # they came from a loop-carried original edge.
                original_src = u.node(edge.src).name.split("#")[0]
                original_dst = u.node(edge.dst).name.split("#")[0]
                if original_src != original_dst or src_copy == dst_copy:
                    continue

    def test_induction_chain_links_copies(self):
        """i -> i at distance 1 becomes i#0 -> i#1 -> ... -> i#0 (dist 1)."""
        g = dot_product()
        u = unroll_ddg(g, 3)
        i0 = u.node_by_name("i#0")
        i1 = u.node_by_name("i#1")
        i2 = u.node_by_name("i#2")
        edges = {
            (e.src, e.dst): e.distance
            for e in u.edges()
            if u.node(e.src).name.startswith("i#")
            and u.node(e.dst).name.startswith("i#")
        }
        assert edges[(i0.uid, i1.uid)] == 0
        assert edges[(i1.uid, i2.uid)] == 0
        assert edges[(i2.uid, i0.uid)] == 1

    def test_recmii_scales_with_factor(self):
        """U iterations per unrolled iteration: the cycle budget grows."""
        g = dot_product()  # RecMII 3
        assert rec_mii(unroll_ddg(g, 2)) == 2 * rec_mii(g)


class TestUnrolledCompilation:
    def test_unrolled_loops_compile_and_verify(self):
        m = parse_config("4c1b2l64r")
        for factor in (2, 4):
            u = unroll_ddg(daxpy(), factor)
            result = compile_loop(u, m, scheme=Scheme.BASELINE)
            verify_kernel(result.kernel)

    def test_unrolling_cuts_per_iteration_communications(self):
        """The Sánchez/González effect: whole copies fit per cluster."""
        m = parse_config("4c1b2l64r")
        base = compile_loop(daxpy(), m, scheme=Scheme.BASELINE)
        u4 = compile_loop(unroll_ddg(daxpy(), 4), m, scheme=Scheme.BASELINE)
        per_orig = base.kernel.n_copy_ops()
        per_unrolled = u4.kernel.n_copy_ops() / 4
        assert per_unrolled < per_orig


class TestProfile:
    def test_iteration_scaling(self):
        profile = UnrolledProfile(factor=4, iterations=103)
        assert profile.unrolled_iterations == 26
        assert UnrolledProfile(factor=4, iterations=100).unrolled_iterations == 25
