"""Removable instructions (Figure 5) on constructed cases."""

import pytest

from repro.core.removable import find_removable_instructions
from repro.core.state import ReplicationState
from repro.core.subgraph import find_replication_subgraph
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config
from repro.partition.partition import Partition


@pytest.fixture
def m2():
    return parse_config("2c1b2l64r")


def state_for(ddg, mapping, machine, ii=4):
    part = Partition(
        ddg, {ddg.node_by_name(k).uid: v for k, v in mapping.items()},
        machine.n_clusters,
    )
    return ReplicationState(part, machine, ii)


def removable_names(state, comm_name):
    comm = state.ddg.node_by_name(comm_name).uid
    sub = find_replication_subgraph(state, comm)
    return {
        state.ddg.node(u).name
        for u in find_removable_instructions(state, sub)
    }


class TestRemovable:
    def test_producer_with_only_foreign_consumers_removed(self, m2):
        b = DdgBuilder()
        b.int_op("p").fp_op("far")
        b.dep("p", "far")
        g = b.build()
        state = state_for(g, {"p": 0, "far": 1}, m2)
        assert removable_names(state, "p") == {"p"}

    def test_local_child_keeps_producer(self, m2):
        b = DdgBuilder()
        b.int_op("p").fp_op("local").fp_op("far")
        b.dep("p", "local").dep("p", "far")
        g = b.build()
        state = state_for(g, {"p": 0, "local": 0, "far": 1}, m2)
        assert removable_names(state, "p") == set()

    def test_cascade_through_parents(self, m2):
        b = DdgBuilder()
        b.int_op("g").int_op("p").fp_op("far")
        b.chain("g", "p")
        b.dep("p", "far")
        g = b.build()
        state = state_for(g, {"g": 0, "p": 0, "far": 1}, m2)
        assert removable_names(state, "p") == {"p", "g"}

    def test_cascade_blocked_by_other_local_child(self, m2):
        b = DdgBuilder()
        b.int_op("g").int_op("p").int_op("other").fp_op("far")
        b.chain("g", "p")
        b.dep("g", "other")
        b.dep("p", "far")
        g = b.build()
        state = state_for(g, {"g": 0, "p": 0, "other": 0, "far": 1}, m2)
        assert removable_names(state, "p") == {"p"}

    def test_parent_with_own_communication_kept(self, m2):
        """A parent whose value still crosses clusters must stay."""
        b = DdgBuilder()
        b.int_op("g").int_op("p").fp_op("far_p").fp_op("far_g")
        b.chain("g", "p")
        b.dep("p", "far_p").dep("g", "far_g")
        g = b.build()
        state = state_for(g, {"g": 0, "p": 0, "far_p": 1, "far_g": 1}, m2)
        assert removable_names(state, "p") == {"p"}

    def test_stores_never_removed(self, m2):
        """A store has a side effect even without register children."""
        b = DdgBuilder()
        b.int_op("p").store("st").fp_op("far")
        b.dep("p", "st")
        b.dep("p", "far")
        g = b.build()
        state = state_for(g, {"p": 0, "st": 1, "far": 1}, m2)
        # p has no local child, but removal must not cascade into stores.
        names = removable_names(state, "p")
        assert "st" not in names

    def test_parents_in_other_clusters_not_candidates(self, m2):
        b = DdgBuilder()
        b.int_op("g").int_op("p").fp_op("far")
        b.chain("g", "p")
        b.dep("p", "far")
        g = b.build()
        # g lives in cluster 1 (feeding p across clusters).
        state = state_for(g, {"g": 1, "p": 0, "far": 1}, m2)
        assert removable_names(state, "p") == {"p"}

    def test_replica_child_keeps_producer_alive(self, m2):
        """A replica of a consumer in the home cluster counts as a child."""
        b = DdgBuilder()
        b.int_op("p").fp_op("c").fp_op("sink")
        b.dep("p", "c").dep("c", "sink")
        g = b.build()
        state = state_for(g, {"p": 0, "c": 1, "sink": 0}, m2)
        # Manually replicate c back into cluster 0.
        state.add_replicas(g.node_by_name("c").uid, {0})
        sub = find_replication_subgraph(state, g.node_by_name("p").uid)
        removable = find_removable_instructions(state, sub)
        assert g.node_by_name("p").uid not in removable
