"""Section 5.1: replication to reduce the schedule length."""

import pytest

from repro.core.length import replicate_for_length
from repro.core.plan import EMPTY_PLAN
from repro.core.replicator import replicate
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config, unified_machine
from repro.partition.partition import Partition
from repro.schedule.order import placed_analysis
from repro.schedule.placed import build_placed_graph


@pytest.fixture
def m2():
    return parse_config("2c1b2l64r")


@pytest.fixture
def critical_comm(m2):
    """A communication squarely on the critical path (Figure 11 shape)."""
    b = DdgBuilder()
    b.int_op("a").fp_op("d").fp_op("e")  # a -> d -> e across clusters
    b.chain("a", "d", "e")
    b.fp_op("b").fp_op("c")  # local work beside a
    b.dep("a", "b")
    b.chain("b", "c")
    g = b.build()
    part = Partition(
        g,
        {
            g.node_by_name("a").uid: 0,
            g.node_by_name("b").uid: 0,
            g.node_by_name("c").uid: 0,
            g.node_by_name("d").uid: 1,
            g.node_by_name("e").uid: 1,
        },
        2,
    )
    return g, part


class TestLengthReplication:
    def test_reduces_estimated_length(self, critical_comm, m2):
        g, part = critical_comm
        ii = 4
        plan = replicate_for_length(part, m2, ii, EMPTY_PLAN)
        before = placed_analysis(
            build_placed_graph(g, part, m2, EMPTY_PLAN), m2, ii
        ).length
        after = placed_analysis(
            build_placed_graph(g, part, m2, plan), m2, ii
        ).length
        assert after < before

    def test_replicates_only_into_critical_cluster(self, critical_comm, m2):
        g, part = critical_comm
        plan = replicate_for_length(part, m2, 4, EMPTY_PLAN)
        a = g.node_by_name("a").uid
        assert plan.replicas.get(a) == frozenset({1})

    def test_communication_may_survive(self, m2):
        """Replicating into one of two consumer clusters keeps the comm."""
        # This needs >= 3 clusters so a's value feeds two foreign ones.
        m4 = parse_config("4c1b2l64r")
        b = DdgBuilder()
        b.int_op("a").fp_op("crit").fp_op("tail").fp_op("other")
        b.chain("a", "crit", "tail")
        b.dep("a", "other")
        g = b.build()
        part = Partition(
            g,
            {
                g.node_by_name("a").uid: 0,
                g.node_by_name("crit").uid: 1,
                g.node_by_name("tail").uid: 1,
                g.node_by_name("other").uid: 2,
            },
            4,
        )
        plan = replicate_for_length(part, m4, 4, EMPTY_PLAN)
        a = g.node_by_name("a").uid
        if a in plan.replicas:
            # 'other' still reads a over the bus.
            placed = build_placed_graph(g, part, m4, plan)
            assert placed.n_comms() >= 1

    def test_noop_when_nothing_critical_crosses(self, m2):
        b = DdgBuilder()
        b.int_op("a").fp_op("b")
        b.dep("a", "b")
        g = b.build()
        part = Partition(g, {u: 0 for u in g.node_ids()}, 2)
        plan = replicate_for_length(part, m2, 4, EMPTY_PLAN)
        assert plan.is_empty

    def test_unclustered_machine_noop(self, critical_comm):
        g, part = critical_comm
        uni_part = Partition(g, {u: 0 for u in g.node_ids()}, 1)
        plan = replicate_for_length(uni_part, unified_machine(), 4, EMPTY_PLAN)
        assert plan.is_empty

    def test_extends_existing_plan(self, critical_comm, m2):
        g, part = critical_comm
        base = replicate(part, m2, ii=2)
        extended = replicate_for_length(part, m2, 4, base)
        # Base decisions are preserved.
        assert set(base.removed_comms) <= set(extended.removed_comms)
