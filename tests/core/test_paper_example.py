"""The paper's worked example, end to end (Figures 3 through 6).

These tests pin the reproduction to the exact published arithmetic:
subgraph memberships, destination clusters, the 49/16 - 31/16 - 40/16
weights, the choice of S_E, and the post-replication updates (S_D grows
a destination, S_J absorbs E and A, weight 42/8).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.removable import find_removable_instructions
from repro.core.replicator import replicate, score_candidates
from repro.core.state import ReplicationState
from repro.core.subgraph import find_replication_subgraph
from repro.core.weights import sharing_table, subgraph_weight


def names(ddg, uids):
    return {ddg.node(uid).name for uid in uids}


def uid(ddg, label):
    return ddg.node_by_name(label).uid


@pytest.fixture
def state(figure3_partitioned, example_machine):
    return ReplicationState(figure3_partitioned, example_machine, ii=2)


class TestInitialCommunications:
    def test_three_communications(self, state):
        ddg = state.ddg
        comms = names(ddg, state.active_comms())
        assert comms == {"D", "E", "J"}

    def test_extra_coms_is_one(self, state):
        # bus capacity = II / bus_lat * nof_buses = 2 / 1 * 1 = 2.
        assert state.machine.bus.capacity(2) == 2
        assert state.extra_coms() == 1

    def test_destinations(self, state):
        ddg = state.ddg
        assert state.comm_destinations(uid(ddg, "D")) == {3}
        assert state.comm_destinations(uid(ddg, "E")) == {1, 3}
        assert state.comm_destinations(uid(ddg, "J")) == {0, 3}


class TestInitialSubgraphs:
    def test_sd_members(self, state):
        sub = find_replication_subgraph(state, uid(state.ddg, "D"))
        assert names(state.ddg, sub.members) == {"D", "B", "C", "A"}

    def test_se_members_exclude_communicated_parent(self, state):
        sub = find_replication_subgraph(state, uid(state.ddg, "E"))
        assert names(state.ddg, sub.members) == {"E", "A"}

    def test_sj_members(self, state):
        sub = find_replication_subgraph(state, uid(state.ddg, "J"))
        assert names(state.ddg, sub.members) == {"J", "I"}


class TestInitialWeights:
    def _weights(self, state):
        subs = {
            state.ddg.node(comm).name: find_replication_subgraph(state, comm)
            for comm in state.active_comms()
        }
        sharing = sharing_table(list(subs.values()))
        return {
            name: subgraph_weight(
                state, sub, find_removable_instructions(state, sub), sharing
            )
            for name, sub in subs.items()
        }

    def test_paper_weights(self, state):
        """S_D and S_J match the paper exactly; S_E matches its *terms*.

        The paper prints weight(S_E) = 5/8 + 5/8 + 5/8 + 5/16 - 4/8 and
        calls the total 31/16, but those terms sum to 27/16 — an
        arithmetic slip in the paper. We reproduce the terms (and the
        resulting ranking, which is unaffected either way).
        """
        weights = self._weights(state)
        assert weights["D"] == Fraction(49, 16)
        assert weights["E"] == Fraction(27, 16)
        assert weights["J"] == Fraction(40, 16)

    def test_se_is_chosen(self, state):
        candidates = score_candidates(state)
        assert state.ddg.node(candidates[0].subgraph.comm).name == "E"

    def test_only_e_removable_for_se(self, state):
        sub = find_replication_subgraph(state, uid(state.ddg, "E"))
        removable = find_removable_instructions(state, sub)
        assert names(state.ddg, removable) == {"E"}

    def test_d_kept_alive_by_its_communication(self, state):
        """D loses its only local child (E) but still broadcasts."""
        sub = find_replication_subgraph(state, uid(state.ddg, "E"))
        removable = find_removable_instructions(state, sub)
        assert uid(state.ddg, "D") not in removable


class TestFigure6Updates:
    @pytest.fixture
    def updated(self, state):
        """State after replicating S_E (the algorithm's first pick)."""
        ddg = state.ddg
        sub = find_replication_subgraph(state, uid(ddg, "E"))
        removable = find_removable_instructions(state, sub)
        state.apply(uid(ddg, "E"), dict(sub.needed), removable)
        return state

    def test_e_and_a_replicated_in_clusters_2_and_4(self, updated):
        ddg = updated.ddg
        assert updated.replicas[uid(ddg, "E")] == {1, 3}
        assert updated.replicas[uid(ddg, "A")] == {1, 3}

    def test_original_e_removed(self, updated):
        assert uid(updated.ddg, "E") in updated.removed

    def test_sd_gains_cluster_2_destination(self, updated):
        """The copy of E in cluster 2 is a new child of D."""
        sub = find_replication_subgraph(updated, uid(updated.ddg, "D"))
        assert sub.destinations == {1, 3}

    def test_sd_needed_drops_a(self, updated):
        sub = find_replication_subgraph(updated, uid(updated.ddg, "D"))
        assert names(updated.ddg, sub.needed) == {"D", "B", "C"}

    def test_sj_absorbs_e_and_a(self, updated):
        sub = find_replication_subgraph(updated, uid(updated.ddg, "J"))
        assert names(updated.ddg, sub.members) == {"J", "I", "E", "A"}

    def test_sj_needs_e_a_only_in_cluster_1(self, updated):
        ddg = updated.ddg
        sub = find_replication_subgraph(updated, uid(ddg, "J"))
        assert sub.needed[uid(ddg, "E")] == {0}
        assert sub.needed[uid(ddg, "A")] == {0}
        assert sub.needed[uid(ddg, "J")] == {0, 3}
        assert sub.needed[uid(ddg, "I")] == {0, 3}

    def test_sj_weight_matches_figure6(self, updated):
        subs = [
            find_replication_subgraph(updated, comm)
            for comm in updated.active_comms()
        ]
        sharing = sharing_table(subs)
        sj = next(s for s in subs if updated.ddg.node(s.comm).name == "J")
        weight = subgraph_weight(
            updated, sj, find_removable_instructions(updated, sj), sharing
        )
        assert weight == Fraction(42, 8)

    def test_sd_removable_cascades_to_a(self, updated):
        """With E's comm gone, removing D frees B, C and finally A."""
        sd = find_replication_subgraph(updated, uid(updated.ddg, "D"))
        removable = find_removable_instructions(updated, sd)
        assert names(updated.ddg, removable) == {"D", "B", "C", "A"}

    def test_extra_coms_now_zero(self, updated):
        assert updated.extra_coms() == 0


class TestFullReplicationRun:
    def test_replicate_stops_after_one_removal(
        self, figure3_partitioned, example_machine
    ):
        """extra_coms = 1, so exactly one communication is removed."""
        plan = replicate(figure3_partitioned, example_machine, ii=2)
        assert plan.feasible
        assert plan.n_removed_comms == 1
        ddg = figure3_partitioned.ddg
        (removed,) = plan.removed_comms
        assert ddg.node(removed).name == "E"

    def test_no_over_replication(self, figure3_partitioned, example_machine):
        plan = replicate(figure3_partitioned, example_machine, ii=2)
        # Only S_E's four instances (E and A in clusters 2 and 4).
        assert plan.n_replicated_instructions == 4
