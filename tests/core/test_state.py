"""Direct unit tests of the mutable replication state."""

import pytest

from repro.core.state import ReplicationState
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config
from repro.machine.resources import FuKind
from repro.partition.partition import Partition


@pytest.fixture
def m4():
    return parse_config("4c1b2l64r")


@pytest.fixture
def state(m4):
    """p (c0) -> {local (c0), far_a (c1), far_b (c2)}; q (c1) -> r (c1)."""
    b = DdgBuilder()
    b.int_op("p").fp_op("local").fp_op("far_a").fp_op("far_b")
    b.int_op("q").fp_op("r")
    b.dep("p", "local").dep("p", "far_a").dep("p", "far_b")
    b.dep("q", "r")
    g = b.build()
    part = Partition(
        g,
        {
            g.node_by_name("p").uid: 0,
            g.node_by_name("local").uid: 0,
            g.node_by_name("far_a").uid: 1,
            g.node_by_name("far_b").uid: 2,
            g.node_by_name("q").uid: 1,
            g.node_by_name("r").uid: 1,
        },
        4,
    )
    return ReplicationState(part, m4, ii=4)


def uid(state, name):
    return state.ddg.node_by_name(name).uid


class TestPresence:
    def test_home_cluster_present(self, state):
        assert state.present_clusters(uid(state, "p")) == {0}

    def test_replicas_add_presence(self, state):
        p = uid(state, "p")
        state.add_replicas(p, {1, 2})
        assert state.present_clusters(p) == {0, 1, 2}

    def test_removal_drops_home(self, state):
        p = uid(state, "p")
        state.apply(p, {p: {1}}, removable=[p])
        assert state.present_clusters(p) == {1}


class TestCommQueries:
    def test_destinations_exclude_home(self, state):
        assert state.comm_destinations(uid(state, "p")) == {1, 2}

    def test_local_only_value_has_no_comm(self, state):
        assert not state.has_comm(uid(state, "q"))

    def test_replication_shrinks_destinations(self, state):
        p = uid(state, "p")
        state.add_replicas(p, {1})
        assert state.comm_destinations(p) == {2}

    def test_removed_comm_is_gone(self, state):
        p = uid(state, "p")
        state.apply(p, {}, removable=[])
        assert state.comm_destinations(p) == set()
        assert not state.has_comm(p)

    def test_replica_consumers_extend_destinations(self, state):
        """A replica of a consumer pulls its parents' comms along."""
        far_a = uid(state, "far_a")
        state.add_replicas(far_a, {3})
        assert 3 in state.comm_destinations(uid(state, "p"))

    def test_extra_coms_formula(self, state, m4):
        # One active comm, capacity II//lat*buses = 4//2 = 2.
        assert state.nof_coms() == 1
        assert state.extra_coms() == 0
        tight = ReplicationState(state.partition, m4, ii=1)
        assert tight.extra_coms() == 1  # capacity 0 at II=1


class TestUsage:
    def test_counts_by_kind_and_cluster(self, state):
        assert state.usage(FuKind.INT, 0) == 1  # p
        assert state.usage(FuKind.FP, 1) == 2  # far_a, r

    def test_replicas_counted(self, state):
        p = uid(state, "p")
        state.add_replicas(p, {1})
        assert state.usage(FuKind.INT, 1) == 2  # q and the replica

    def test_removals_uncounted(self, state):
        local = uid(state, "local")
        state.apply(local, {}, removable=[local])
        assert state.usage(FuKind.FP, 0) == 0

    def test_usage_table_matches_pointwise(self, state):
        table = state.usage_table()
        for cluster in range(4):
            for kind in FuKind:
                assert table[cluster][kind] == state.usage(kind, cluster)


class TestApplyAndPlan:
    def test_apply_then_plan_round_trip(self, state, m4):
        p = uid(state, "p")
        state.apply(p, {p: {1, 2}}, removable=[])
        plan = state.to_plan(initial_coms=1)
        assert plan.replicas[p] == frozenset({1, 2})
        assert plan.removed_comms == frozenset({p})
        restored = ReplicationState.from_plan(
            state.partition, m4, 4, plan
        )
        assert restored.present_clusters(p) == {0, 1, 2}
        assert not restored.has_comm(p)

    def test_plan_counters(self, state):
        p = uid(state, "p")
        local = uid(state, "local")
        state.apply(p, {p: {1, 2}}, removable=[local])
        plan = state.to_plan(initial_coms=1)
        assert plan.n_replicated_instructions == 2
        assert plan.net_added_instructions == 1
        assert not plan.is_empty
