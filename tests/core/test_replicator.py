"""The replication driver: stop rule, feasibility, statistics."""

import pytest

from repro.core.replicator import replicate
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config, unified_machine
from repro.partition.partition import Partition
from repro.schedule.placed import build_placed_graph
from repro.schedule.scheduler import schedule
from repro.sim.verifier import verify_kernel


@pytest.fixture
def m2():
    return parse_config("2c1b2l64r")


def partition_for(ddg, mapping, n):
    return Partition(
        ddg, {ddg.node_by_name(k).uid: v for k, v in mapping.items()}, n
    )


@pytest.fixture
def two_comms():
    """Two cheap communications; bus fits only one at II=2."""
    b = DdgBuilder()
    b.int_op("p0").fp_op("c0")
    b.int_op("p1").fp_op("c1")
    b.dep("p0", "c0").dep("p1", "c1")
    g = b.build()
    return g, partition_for(g, {"p0": 0, "c0": 1, "p1": 0, "c1": 1}, 2)


class TestStopRule:
    def test_removes_exactly_extra_coms(self, two_comms, m2):
        g, part = two_comms
        # II=2, 1 bus latency 2 -> capacity 1, extra_coms = 1.
        plan = replicate(part, m2, ii=2)
        assert plan.feasible
        assert plan.n_removed_comms == 1

    def test_no_over_replication_when_bus_fits(self, two_comms, m2):
        g, part = two_comms
        # II=4 -> capacity 2 >= 2 comms: nothing to do.
        plan = replicate(part, m2, ii=4)
        assert plan.feasible and plan.is_empty

    def test_spare_comms_removes_more(self, two_comms, m2):
        g, part = two_comms
        plan = replicate(part, m2, ii=4, spare_comms=2)
        assert plan.n_removed_comms == 2

    def test_no_comms_no_plan(self, m2):
        b = DdgBuilder()
        b.int_op("a").fp_op("b")
        b.dep("a", "b")
        g = b.build()
        part = partition_for(g, {"a": 0, "b": 0}, 2)
        plan = replicate(part, m2, ii=2)
        assert plan.is_empty and plan.feasible

    def test_unified_machine_trivial(self, two_comms):
        g, _ = two_comms
        part = Partition(g, {u: 0 for u in g.node_ids()}, 1)
        plan = replicate(part, unified_machine(), ii=1)
        assert plan.is_empty


class TestFeasibility:
    def test_infeasible_when_destinations_full(self):
        m = parse_config("4c1b2l64r")  # 1 INT unit per cluster
        b = DdgBuilder()
        # Two INT values crossing into cluster 1, which is INT-saturated.
        b.int_op("p0").int_op("p1")
        b.fp_op("c0").fp_op("c1")
        b.int_op("f0").int_op("f1")
        b.dep("p0", "c0").dep("p1", "c1")
        g = b.build()
        part = partition_for(
            g, {"p0": 0, "p1": 0, "c0": 1, "c1": 1, "f0": 1, "f1": 1}, 4
        )
        # II=2: capacity 1, extra=1, but cluster 1 already has 2 INT ops
        # in 2 slots -> no room for any replica.
        plan = replicate(part, m, ii=2)
        assert not plan.feasible

    def test_feasible_plan_builds_valid_placed_graph(self, two_comms, m2):
        g, part = two_comms
        plan = replicate(part, m2, ii=2)
        placed = build_placed_graph(g, part, m2, plan)
        kernel = schedule(placed, m2, ii=2)
        verify_kernel(kernel)
        assert placed.n_comms() == 1


class TestStatistics:
    def test_initial_coms_recorded(self, two_comms, m2):
        g, part = two_comms
        plan = replicate(part, m2, ii=2)
        assert plan.initial_coms == 2

    def test_replica_and_removal_counts(self, two_comms, m2):
        g, part = two_comms
        plan = replicate(part, m2, ii=2)
        # One producer replicated into one cluster; the original (no
        # remaining local children) is removed.
        assert plan.n_replicated_instructions == 1
        assert len(plan.removed) == 1
        assert plan.net_added_instructions == 0

    def test_cheapest_subgraph_chosen(self, m2):
        """A 1-node subgraph beats a 3-node one."""
        b = DdgBuilder()
        b.int_op("cheap").fp_op("uc")
        b.int_op("g1").int_op("g2").int_op("deep").fp_op("ud")
        b.chain("g1", "g2", "deep")
        b.dep("cheap", "uc").dep("deep", "ud")
        # keep producers alive locally so removal does not tip the scale
        b.fp_op("keep1").fp_op("keep2")
        b.dep("cheap", "keep1").dep("deep", "keep2")
        g = b.build()
        part = partition_for(
            g,
            {
                "cheap": 0, "uc": 1, "g1": 0, "g2": 0, "deep": 0, "ud": 1,
                "keep1": 0, "keep2": 0,
            },
            2,
        )
        plan = replicate(part, m2, ii=2)  # capacity 1, extra 1
        assert plan.n_removed_comms == 1
        (removed,) = plan.removed_comms
        assert g.node(removed).name == "cheap"
