"""Incremental candidate scorer: parity with the from-scratch reference.

Mirrors ``tests/partition/test_incremental.py``: every ``apply`` is
cross-checked against :func:`repro.core.replicator.score_candidates`
recomputed from scratch, and the maintained state tables are compared
with a state rebuilt from the frozen plan. Random graphs come from a
seeded generator, so failures reproduce.
"""

import random

import pytest

from repro.core.incremental import CandidateScorer, ReplicatorStats
from repro.core.replicator import replicate, score_candidates
from repro.core.state import ReplicationState
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config
from repro.partition.partition import Partition


def random_case(rng):
    """A random loop body, partition and machine."""
    n = rng.randrange(6, 26)
    b = DdgBuilder(f"rand{n}")
    for i in range(n):
        kind = rng.choice(("int", "fp", "load"))
        getattr(b, f"{kind}_op" if kind != "load" else "load")(f"n{i}")
    for dst in range(1, n):
        for _ in range(rng.randrange(0, 3)):
            src = rng.randrange(0, dst)
            b.dep(f"n{src}", f"n{dst}")
    # A few loop-carried dependences, possibly backward.
    for _ in range(rng.randrange(0, 3)):
        src = rng.randrange(0, n)
        dst = rng.randrange(0, n)
        if src != dst:
            b.dep(f"n{src}", f"n{dst}", distance=1)
    g = b.build()

    config = rng.choice(("2c1b2l64r", "4c1b2l64r", "4c2b1l64r"))
    machine = parse_config(config)
    assignment = {
        uid: rng.randrange(machine.n_clusters) for uid in g.node_ids()
    }
    partition = Partition(g, assignment, machine.n_clusters)
    ii = rng.randrange(2, 5)
    return partition, machine, ii


def assert_tables_match(state):
    """Maintained tables must equal a from-scratch rebuild."""
    rebuilt = ReplicationState.from_plan(
        state.partition, state.machine, state.ii, state.to_plan(initial_coms=0)
    )
    assert state.usage_table() == rebuilt.usage_table()
    assert state.active_comms() == rebuilt.active_comms()
    for uid in state.ddg.node_ids():
        assert state.present_clusters(uid) == rebuilt.present_clusters(uid)
        assert state.consumer_clusters(uid) == rebuilt.consumer_clusters(uid)
        assert state.comm_destinations(uid) == rebuilt.comm_destinations(uid)


class TestScorerParity:
    @pytest.mark.parametrize("seed", range(40))
    def test_candidates_match_reference_after_every_apply(self, seed):
        rng = random.Random(seed)
        partition, machine, ii = random_case(rng)
        state = ReplicationState(partition, machine, ii)
        scorer = CandidateScorer(state, ReplicatorStats())

        for _ in range(len(partition.ddg) + 1):
            expected = score_candidates(state)
            assert scorer.candidates() == expected
            if not expected:
                break
            # Exercise invalidation on varied picks, not just the best.
            best = expected[rng.randrange(len(expected))]
            delta = state.apply(
                best.subgraph.comm, dict(best.subgraph.needed), best.removable
            )
            scorer.observe(delta)
            assert_tables_match(state)

    @pytest.mark.parametrize("seed", range(40, 60))
    def test_replicate_matches_reference_loop(self, seed):
        rng = random.Random(seed)
        partition, machine, ii = random_case(rng)
        stats = ReplicatorStats()
        plan = replicate(partition, machine, ii, stats=stats)

        # Reference: the historical loop, re-scoring from scratch.
        state = ReplicationState(partition, machine, ii)
        initial = state.nof_coms()
        if initial and machine.is_clustered:
            removed = 0
            while removed < initial:
                if state.extra_coms() == 0:
                    break
                candidates = score_candidates(state)
                if not candidates:
                    break
                best = candidates[0]
                state.apply(
                    best.subgraph.comm, dict(best.subgraph.needed), best.removable
                )
                removed += 1
        expected = state.to_plan(
            initial_coms=initial, feasible=state.extra_coms() == 0
        )
        assert plan == expected


class TestScorerReuse:
    def test_independent_comms_reuse_cached_walks(self):
        """Replicating one far corner must not re-walk the other."""
        b = DdgBuilder()
        # Two disjoint producer->consumer pairs crossing clusters.
        b.int_op("p0").fp_op("c0").int_op("p1").fp_op("c1")
        b.dep("p0", "c0").dep("p1", "c1")
        g = b.build()
        machine = parse_config("4c1b2l64r")
        partition = Partition(
            g,
            {
                g.node_by_name("p0").uid: 0,
                g.node_by_name("c0").uid: 1,
                g.node_by_name("p1").uid: 2,
                g.node_by_name("c1").uid: 3,
            },
            4,
        )
        state = ReplicationState(partition, machine, ii=2)
        stats = ReplicatorStats()
        scorer = CandidateScorer(state, stats)
        first = scorer.candidates()
        assert stats.subgraph_walks == 2
        best = first[0]
        delta = state.apply(
            best.subgraph.comm, dict(best.subgraph.needed), best.removable
        )
        scorer.observe(delta)
        scorer.candidates()
        # The untouched communication's subgraph came from the cache.
        assert stats.subgraph_reused >= 1

    def test_skip_rate_counts_both_walks(self):
        stats = ReplicatorStats(
            subgraph_walks=1, subgraph_reused=2, removable_walks=1
        )
        assert stats.rescore_skip_rate == 0.5
        assert ReplicatorStats().rescore_skip_rate == 0.0
