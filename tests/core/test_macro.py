"""Section 5.2: macro-node replication (the blunt alternative)."""

import pytest

from repro.core.macro import macro_replicate
from repro.core.replicator import replicate
from repro.machine.config import parse_config
from repro.partition.multilevel import MultilevelPartitioner
from repro.schedule.placed import build_placed_graph
from repro.schedule.scheduler import schedule
from repro.sim.verifier import verify_kernel
from repro.workloads.specfp import benchmark_loops


@pytest.fixture
def m4():
    return parse_config("4c1b2l64r")


def setup(loop, machine, ii):
    partitioner = MultilevelPartitioner(ddg=loop.ddg, machine=machine)
    part = partitioner.partition(ii)
    return partitioner, part


class TestMacroReplication:
    def test_produces_valid_plans(self, m4):
        for loop in benchmark_loops("tomcatv", limit=3):
            for ii in range(6, 14):
                partitioner, part = setup(loop, m4, ii)
                plan = macro_replicate(part, m4, ii, partitioner.levels)
                if not plan.feasible:
                    continue
                placed = build_placed_graph(loop.ddg, part, m4, plan)
                try:
                    kernel = schedule(placed, m4, ii)
                except Exception:
                    continue
                verify_kernel(kernel)
                return
        pytest.fail("no feasible macro plan found in the sample")

    def test_replicates_more_than_minimal_on_aggregate(self, m4):
        """Section 5.2's conclusion: macro replication copies more.

        Individual loops can go either way (a macro-node occasionally
        coincides with the minimum subgraph), so the claim is checked
        in aggregate over a sample.
        """
        total_min = total_macro = checked = 0
        for loop in benchmark_loops("su2cor", limit=8):
            ii = 8
            partitioner, part = setup(loop, m4, ii)
            minimal = replicate(part, m4, ii)
            macro = macro_replicate(part, m4, ii, partitioner.levels)
            if not (minimal.feasible and macro.feasible):
                continue
            if not minimal.n_removed_comms or not macro.n_removed_comms:
                continue
            total_min += minimal.n_replicated_instructions / minimal.n_removed_comms
            total_macro += macro.n_replicated_instructions / macro.n_removed_comms
            checked += 1
        assert checked > 0
        assert total_macro >= total_min

    def test_same_stop_rule(self, m4):
        loop = benchmark_loops("swim", limit=1)[0]
        ii = 8
        partitioner, part = setup(loop, m4, ii)
        plan = macro_replicate(part, m4, ii, partitioner.levels)
        if plan.feasible:
            from repro.core.state import ReplicationState

            state = ReplicationState.from_plan(part, m4, ii, plan)
            assert state.extra_coms() == 0

    def test_level_out_of_range_clamped(self, m4):
        loop = benchmark_loops("swim", limit=1)[0]
        partitioner, part = setup(loop, m4, 8)
        plan = macro_replicate(
            part, m4, 8, partitioner.levels, level_index=999
        )
        assert plan is not None
