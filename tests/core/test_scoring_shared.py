"""Shared scoring module + pre-granted replicas in the replicator."""

from __future__ import annotations

import random

from repro.core.plan import EMPTY_PLAN, ReplicationPlan
from repro.core.replicator import replicate
from repro.core.state import ReplicationState
from repro.machine.config import parse_config
from repro.partition.partition import Partition
from repro.workloads.generator import LoopSpec, generate_loop


def _communicating_case(seed: int = 5, machine_name: str = "4c1b2l64r", ii: int = 2):
    rng = random.Random(seed)
    machine = parse_config(machine_name)
    ddg = generate_loop(LoopSpec(name="seeded"), rng, index=seed).ddg
    assignment = {
        uid: rng.randrange(machine.n_clusters) for uid in ddg.node_ids()
    }
    partition = Partition(ddg, assignment, machine.n_clusters)
    assert partition.nof_coms() > 0
    return ddg, machine, partition, ii


class TestSharedScoring:
    def test_candidate_is_one_type(self):
        """Both scorers (and back-compat importers) see one Candidate."""
        from repro.core.replicator import Candidate as from_replicator
        from repro.core.scoring import Candidate as from_scoring

        assert from_replicator is from_scoring

    def test_score_subgraph_lazy_removable(self):
        """Infeasible subgraphs must not pay for the removable walk."""
        from repro.core.scoring import score_subgraph
        from repro.core.subgraph import find_replication_subgraph
        from repro.core.weights import sharing_table

        _, machine, partition, ii = _communicating_case()
        state = ReplicationState(partition, machine, ii)
        comm = state.active_comms()[0]
        subgraph = find_replication_subgraph(state, comm)
        sharing = sharing_table([subgraph])
        calls = []

        def removable_of():
            calls.append(1)
            return []

        scored = score_subgraph(state, subgraph, removable_of, sharing)
        if scored is None:
            assert calls == []
        else:
            assert len(calls) == 1


class TestReplicateInitial:
    def test_empty_initial_is_identity(self):
        _, machine, partition, ii = _communicating_case()
        bare = replicate(partition, machine, ii)
        seeded = replicate(partition, machine, ii, initial=EMPTY_PLAN)
        assert seeded.replicas == bare.replicas
        assert seeded.removed == bare.removed
        assert seeded.removed_comms == bare.removed_comms
        assert seeded.initial_coms == bare.initial_coms
        assert seeded.feasible == bare.feasible

    def test_pre_grants_survive_into_plan(self):
        _, machine, partition, ii = _communicating_case()
        state = ReplicationState(partition, machine, ii)
        comm = state.active_comms()[0]
        dest = sorted(state.comm_destinations(comm))[0]
        grants = ReplicationPlan(replicas={comm: frozenset({dest})})
        plan = replicate(partition, machine, ii, initial=grants)
        assert dest in plan.replicas.get(comm, frozenset())

    def test_pre_grants_lower_the_starting_comms(self):
        """A granted replica that covers a destination is already paid
        for: the top-up pass starts from the post-grant count."""
        _, machine, partition, ii = _communicating_case()
        state = ReplicationState(partition, machine, ii)
        bare_coms = state.nof_coms()
        comm = state.active_comms()[0]
        dests = frozenset(state.comm_destinations(comm))
        grants = ReplicationPlan(replicas={comm: dests})
        plan = replicate(partition, machine, ii, initial=grants)
        assert plan.initial_coms < bare_coms

    def test_pre_granted_replicas_consume_resources(self):
        """from_plan counts granted replicas in the usage tables."""
        _, machine, partition, ii = _communicating_case()
        state = ReplicationState(partition, machine, ii)
        comm = state.active_comms()[0]
        dest = sorted(state.comm_destinations(comm))[0]
        kind = partition.ddg.node(comm).fu_kind
        before = state.usage(kind, dest)
        seeded = ReplicationState.from_plan(
            partition,
            machine,
            ii,
            ReplicationPlan(replicas={comm: frozenset({dest})}),
        )
        assert seeded.usage(kind, dest) == before + 1
