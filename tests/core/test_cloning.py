"""Value cloning (the Kuras et al. baseline)."""

import pytest

from repro.core.cloning import clone_values, is_clonable
from repro.core.replicator import replicate
from repro.core.state import ReplicationState
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config
from repro.partition.partition import Partition
from repro.schedule.placed import build_placed_graph
from repro.schedule.scheduler import schedule
from repro.sim.verifier import verify_kernel


@pytest.fixture
def m2():
    return parse_config("2c1b2l64r")


def state_for(ddg, mapping, machine, ii=2):
    part = Partition(
        ddg, {ddg.node_by_name(k).uid: v for k, v in mapping.items()},
        machine.n_clusters,
    )
    return part, ReplicationState(part, machine, ii)


class TestClonable:
    def test_root_nodes_clonable(self, m2):
        b = DdgBuilder()
        b.int_op("base").fp_op("use")
        b.dep("base", "use")
        g = b.build()
        _, state = state_for(g, {"base": 0, "use": 1}, m2)
        assert is_clonable(state, g.node_by_name("base").uid)

    def test_induction_variable_clonable(self, m2):
        b = DdgBuilder()
        b.int_op("i").fp_op("use")
        b.dep("i", "i", distance=1)
        b.dep("i", "use")
        g = b.build()
        _, state = state_for(g, {"i": 0, "use": 1}, m2)
        assert is_clonable(state, g.node_by_name("i").uid)

    def test_computed_values_not_clonable(self, m2):
        b = DdgBuilder()
        b.int_op("a").int_op("b").fp_op("use")
        b.dep("a", "b").dep("b", "use")
        g = b.build()
        _, state = state_for(g, {"a": 0, "b": 0, "use": 1}, m2)
        assert not is_clonable(state, g.node_by_name("b").uid)

    def test_stores_not_clonable(self, m2):
        b = DdgBuilder()
        b.store("st")
        g = b.build()
        _, state = state_for(g, {"st": 0}, m2)
        assert not is_clonable(state, g.node_by_name("st").uid)


class TestCloneValues:
    def test_clones_remove_cheap_comms(self, m2):
        b = DdgBuilder()
        b.int_op("i").fp_op("u0").fp_op("u1")
        b.dep("i", "i", distance=1)
        b.dep("i", "u0").dep("i", "u1")
        b.int_op("x").int_op("y").fp_op("uy")
        b.chain("x", "y")
        b.dep("y", "uy")
        g = b.build()
        part, _ = state_for(
            g, {"i": 0, "u0": 1, "u1": 1, "x": 0, "y": 0, "uy": 1}, m2, 2
        )
        plan = clone_values(part, m2, ii=2)
        i = g.node_by_name("i").uid
        # The induction variable is cloned; y (computed) is not.
        assert i in plan.replicas
        assert g.node_by_name("y").uid not in plan.replicas

    def test_cloned_plans_schedule_and_verify(self, m2):
        b = DdgBuilder()
        b.int_op("i").fp_op("u0").fp_op("u1")
        b.dep("i", "i", distance=1)
        b.dep("i", "u0").dep("i", "u1")
        b.int_op("x").fp_op("ux")
        b.dep("x", "ux")
        g = b.build()
        part, _ = state_for(
            g, {"i": 0, "u0": 1, "u1": 1, "x": 0, "ux": 1}, m2, 2
        )
        plan = clone_values(part, m2, ii=2)
        placed = build_placed_graph(g, part, m2, plan)
        kernel = schedule(placed, m2, ii=2)
        verify_kernel(kernel)

    def test_cloning_weaker_than_replication(self, m2):
        """Cloning cannot chase producers, so it removes fewer comms."""
        b = DdgBuilder()
        # Both comms are fed by computed values: cloning is powerless.
        b.int_op("a0").int_op("b0").fp_op("u0")
        b.chain("a0", "b0")
        b.dep("b0", "u0")
        b.int_op("a1").int_op("b1").fp_op("u1")
        b.chain("a1", "b1")
        b.dep("b1", "u1")
        g = b.build()
        part, _ = state_for(
            g,
            {"a0": 0, "b0": 0, "u0": 1, "a1": 0, "b1": 0, "u1": 1},
            m2,
            2,
        )
        cloned = clone_values(part, m2, ii=2)
        replicated = replicate(part, m2, ii=2)
        assert not cloned.feasible
        assert replicated.feasible
        assert replicated.n_removed_comms > cloned.n_removed_comms

    def test_respects_bus_stop_rule(self, m2):
        b = DdgBuilder()
        b.int_op("i").fp_op("u0")
        b.int_op("j").fp_op("u1")
        b.dep("i", "u0").dep("j", "u1")
        g = b.build()
        part, _ = state_for(g, {"i": 0, "j": 0, "u0": 1, "u1": 1}, m2, 4)
        # Capacity 2 at II=4 covers both comms: nothing cloned.
        plan = clone_values(part, m2, ii=4)
        assert plan.is_empty
