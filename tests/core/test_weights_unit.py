"""Unit behaviour of the weight heuristic beyond the paper example."""

import pytest
from fractions import Fraction

from repro.core.state import ReplicationState
from repro.core.subgraph import find_replication_subgraph
from repro.core.weights import (
    node_weight,
    removal_benefit,
    sharing_table,
    subgraph_weight,
)
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config
from repro.partition.partition import Partition


@pytest.fixture
def m2():
    return parse_config("2c1b2l64r")  # 2 units of each kind per cluster


def state_for(ddg, mapping, machine, ii):
    part = Partition(
        ddg, {ddg.node_by_name(k).uid: v for k, v in mapping.items()},
        machine.n_clusters,
    )
    return ReplicationState(part, machine, ii)


@pytest.fixture
def single_comm(m2):
    b = DdgBuilder()
    b.int_op("p").fp_op("c").fp_op("keep")
    b.dep("p", "c").dep("p", "keep")
    g = b.build()
    return g, state_for(g, {"p": 0, "c": 1, "keep": 0}, m2, ii=2)


class TestNodeWeight:
    def test_formula(self, single_comm):
        g, state = single_comm
        p = g.node_by_name("p").uid
        sub = find_replication_subgraph(state, p)
        sharing = sharing_table([sub])
        # cluster 1: zero INT usage, one extra INT op; 2 units * II 2.
        w = node_weight(state, p, 1, sub.extra_ops(state), sharing)
        assert w == Fraction(0 + 1, 2 * 2)

    def test_sharing_halves_weight(self, m2):
        b = DdgBuilder()
        b.int_op("shared")
        b.int_op("p0").int_op("p1")
        b.dep("shared", "p0").dep("shared", "p1")
        b.fp_op("c0").fp_op("c1")
        b.dep("p0", "c0").dep("p1", "c1")
        g = b.build()
        state = state_for(
            g, {"shared": 0, "p0": 0, "p1": 0, "c0": 1, "c1": 1}, m2, ii=2
        )
        subs = [
            find_replication_subgraph(state, g.node_by_name(n).uid)
            for n in ("p0", "p1")
        ]
        sharing = sharing_table(subs)
        shared_uid = g.node_by_name("shared").uid
        assert sharing[(shared_uid, 1)] == 2
        solo = sharing_table([subs[0]])
        w_shared = node_weight(state, shared_uid, 1, subs[0].extra_ops(state), sharing)
        w_solo = node_weight(state, shared_uid, 1, subs[0].extra_ops(state), solo)
        assert w_shared == w_solo / 2

    def test_usage_reflects_prior_replicas(self, single_comm):
        g, state = single_comm
        p = g.node_by_name("p").uid
        state.add_replicas(g.node_by_name("keep").uid, {1})
        # 'keep' is FP so INT usage in cluster 1 is still 0 ...
        sub = find_replication_subgraph(state, p)
        w = node_weight(state, p, 1, sub.extra_ops(state), sharing_table([sub]))
        assert w == Fraction(1, 4)


class TestRemovalBenefit:
    def test_single_removal(self, m2):
        b = DdgBuilder()
        b.int_op("p").int_op("pad").fp_op("c")
        b.dep("p", "c")
        g = b.build()
        state = state_for(g, {"p": 0, "pad": 0, "c": 1}, m2, ii=2)
        p = g.node_by_name("p").uid
        # usage(INT, c0) = 2; removing p leaves 1 -> benefit 1/4.
        assert removal_benefit(state, [p]) == Fraction(2 - 1, 4)

    def test_sequential_removals_discount(self, m2):
        b = DdgBuilder()
        b.int_op("g").int_op("p").fp_op("c")
        b.chain("g", "p")
        b.dep("p", "c")
        g = b.build()
        state = state_for(g, {"g": 0, "p": 0, "c": 1}, m2, ii=2)
        uids = [g.node_by_name("p").uid, g.node_by_name("g").uid]
        # usage 2: benefits (2-1)/4 + (2-2)/4.
        assert removal_benefit(state, uids) == Fraction(1, 4)

    def test_empty_removal_zero(self, single_comm):
        _, state = single_comm
        assert removal_benefit(state, []) == 0


class TestSubgraphWeight:
    def test_total_is_cost_minus_benefit(self, single_comm):
        g, state = single_comm
        p = g.node_by_name("p").uid
        sub = find_replication_subgraph(state, p)
        sharing = sharing_table([sub])
        with_removal = subgraph_weight(state, sub, [], sharing)
        # p stays alive through 'keep', so no removal; weight is the
        # plain replication cost.
        assert with_removal == Fraction(1, 4)

    def test_weight_can_go_negative_with_removals(self, m2):
        """A replication that frees a loaded cluster can be net-negative."""
        b = DdgBuilder()
        b.int_op("p")
        for i in range(3):
            b.int_op(f"pad{i}")
        b.fp_op("c")
        b.dep("p", "c")
        g = b.build()
        mapping = {"p": 0, "c": 1, "pad0": 0, "pad1": 0, "pad2": 0}
        state = state_for(g, mapping, m2, ii=2)
        p = g.node_by_name("p").uid
        sub = find_replication_subgraph(state, p)
        weight = subgraph_weight(state, sub, [p], sharing_table([sub]))
        # cost (0+1)/4, benefit (4-1)/4 -> negative.
        assert weight == Fraction(1, 4) - Fraction(3, 4)
