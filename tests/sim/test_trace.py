"""Issue traces and the codegen differential check."""

import pytest

from repro.codegen.program import flat_program
from repro.core.plan import EMPTY_PLAN
from repro.core.replicator import replicate
from repro.machine.config import parse_config
from repro.partition.multilevel import initial_partition
from repro.schedule.placed import build_placed_graph
from repro.schedule.scheduler import schedule
from repro.sim.trace import format_trace, issue_trace
from repro.workloads.patterns import daxpy, dot_product, stencil5
from repro.workloads.specfp import benchmark_loops


@pytest.fixture
def m2():
    return parse_config("2c1b2l64r")


def kernel_for(ddg, machine, ii, with_replication=False):
    part = initial_partition(ddg, machine, ii)
    plan = replicate(part, machine, ii) if with_replication else EMPTY_PLAN
    graph = build_placed_graph(ddg, part, machine, plan)
    return schedule(graph, machine, ii)


class TestIssueTrace:
    def test_event_count(self, m2):
        kernel = kernel_for(daxpy(), m2, 4)
        n = 6
        assert len(issue_trace(kernel, n)) == len(kernel.ops) * n

    def test_sorted_by_cycle(self, m2):
        kernel = kernel_for(stencil5(), m2, 6)
        trace = issue_trace(kernel, 8)
        cycles = [e.cycle for e in trace]
        assert cycles == sorted(cycles)

    def test_completion_includes_latency(self, m2):
        kernel = kernel_for(daxpy(), m2, 4)
        for event in issue_trace(kernel, 2):
            assert event.completes >= event.cycle + 1

    def test_negative_iterations_rejected(self, m2):
        kernel = kernel_for(daxpy(), m2, 4)
        with pytest.raises(ValueError):
            issue_trace(kernel, -1)

    @pytest.mark.parametrize("make,ii", [(daxpy, 4), (stencil5, 6), (dot_product, 4)])
    def test_differential_against_codegen(self, m2, make, ii):
        """Trace events == flat-program slots, by an independent path."""
        kernel = kernel_for(make(), m2, ii, with_replication=True)
        n = kernel.stage_count + 3
        trace = issue_trace(kernel, n)
        program = flat_program(kernel, n)

        from_trace = sorted(
            (e.cycle, e.name, e.cluster, e.iteration) for e in trace
        )
        from_program = sorted(
            (word.cycle, op.name, op.cluster, op.iteration)
            for word in program.words
            for op in word.ops
        )
        assert from_trace == from_program

    def test_differential_on_suite_loop(self, m2):
        loop = benchmark_loops("wave5", limit=1)[0]
        from repro.pipeline.driver import Scheme, compile_loop

        result = compile_loop(loop.ddg, m2, scheme=Scheme.REPLICATION)
        n = result.kernel.stage_count + 2
        trace = issue_trace(result.kernel, n)
        program = flat_program(result.kernel, n)
        assert len(trace) == program.issue_count()


class TestFormat:
    def test_renders_and_truncates(self, m2):
        kernel = kernel_for(daxpy(), m2, 4)
        trace = issue_trace(kernel, 20)
        text = format_trace(trace, limit=10)
        assert "more events" in text
        assert text.count("\n") == 10

    def test_no_limit(self, m2):
        kernel = kernel_for(daxpy(), m2, 4)
        trace = issue_trace(kernel, 2)
        text = format_trace(trace, limit=None)
        assert text.count("\n") == len(trace) - 1
