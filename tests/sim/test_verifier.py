"""The independent kernel verifier."""

import dataclasses

import pytest

from repro.core.plan import EMPTY_PLAN
from repro.ddg.builder import DdgBuilder
from repro.machine.config import parse_config, unified_machine
from repro.partition.partition import Partition
from repro.partition.multilevel import initial_partition
from repro.schedule.placed import build_placed_graph
from repro.schedule.scheduler import schedule
from repro.sim.verifier import VerificationError, verify_kernel
from repro.workloads.patterns import stencil5


@pytest.fixture
def m2():
    return parse_config("2c1b2l64r")


@pytest.fixture
def good_kernel(m2):
    ddg = stencil5()
    part = initial_partition(ddg, m2, 6)
    graph = build_placed_graph(ddg, part, m2, EMPTY_PLAN)
    return schedule(graph, m2, ii=6)


def tamper(kernel, iid, **changes):
    ops = dict(kernel.ops)
    ops[iid] = dataclasses.replace(ops[iid], **changes)
    return dataclasses.replace(kernel, ops=ops)


class TestVerifier:
    def test_valid_kernel_passes(self, good_kernel):
        verify_kernel(good_kernel)

    def test_dependence_violation_caught(self, good_kernel):
        # Move a non-source op to cycle -100: some dependence breaks.
        victim = next(
            op.instance.iid
            for op in good_kernel.ops.values()
            if good_kernel.graph.in_edges(op.instance.iid)
        )
        bad = tamper(good_kernel, victim, start=-100)
        with pytest.raises(VerificationError):
            verify_kernel(bad)

    def test_fu_overflow_caught(self, m2):
        b = DdgBuilder()
        b.int_op("a").int_op("b").int_op("c")
        g = b.build()
        part = Partition(g, {u: 0 for u in g.node_ids()}, 2)
        graph = build_placed_graph(g, part, m2, EMPTY_PLAN)
        kernel = schedule(graph, m2, ii=2)
        # Force all three INT ops (2 units) into the same modulo slot.
        ops = {
            iid: dataclasses.replace(op, start=0)
            for iid, op in kernel.ops.items()
        }
        bad = dataclasses.replace(kernel, ops=ops)
        with pytest.raises(VerificationError):
            verify_kernel(bad)

    def test_bus_overlap_caught(self, m2):
        b = DdgBuilder()
        b.int_op("p0").fp_op("c0").int_op("p1").fp_op("c1")
        b.dep("p0", "c0").dep("p1", "c1")
        g = b.build()
        part = Partition(
            g,
            {
                g.node_by_name("p0").uid: 0,
                g.node_by_name("p1").uid: 0,
                g.node_by_name("c0").uid: 1,
                g.node_by_name("c1").uid: 1,
            },
            2,
        )
        graph = build_placed_graph(g, part, m2, EMPTY_PLAN)
        kernel = schedule(graph, m2, ii=4)
        copies = [op for op in kernel.ops.values() if op.instance.is_copy]
        assert len(copies) == 2
        # Put both transfers on bus 0 at the same slot.
        ops = dict(kernel.ops)
        for op in copies:
            ops[op.instance.iid] = dataclasses.replace(op, start=20, bus=0)
        bad = dataclasses.replace(kernel, ops=ops)
        with pytest.raises(VerificationError):
            verify_kernel(bad)

    def test_missing_instance_caught(self, good_kernel):
        ops = dict(good_kernel.ops)
        ops.pop(next(iter(ops)))
        bad = dataclasses.replace(good_kernel, ops=ops)
        with pytest.raises(VerificationError):
            verify_kernel(bad)

    def test_copy_without_bus_caught(self, good_kernel):
        copies = [
            op for op in good_kernel.ops.values() if op.instance.is_copy
        ]
        if not copies:
            pytest.skip("partition produced no communications")
        bad = tamper(good_kernel, copies[0].instance.iid, bus=None)
        with pytest.raises(VerificationError):
            verify_kernel(bad)

    def test_loop_carried_dependences_relax(self):
        """distance >= 1 edges allow the consumer to issue 'earlier'."""
        m = unified_machine()
        b = DdgBuilder()
        b.fp_op("acc")
        b.dep("acc", "acc", distance=1)
        g = b.build()
        part = Partition(g, {u: 0 for u in g.node_ids()}, 1)
        graph = build_placed_graph(g, part, m, EMPTY_PLAN)
        kernel = schedule(graph, m, ii=3)
        verify_kernel(kernel)
