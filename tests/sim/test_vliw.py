"""Cycle-stepped simulation."""

import pytest

from repro.core.plan import EMPTY_PLAN
from repro.core.replicator import replicate
from repro.machine.config import parse_config, unified_machine
from repro.partition.partition import Partition
from repro.partition.multilevel import initial_partition
from repro.schedule.placed import build_placed_graph
from repro.schedule.scheduler import schedule
from repro.sim.vliw import simulate
from repro.workloads.patterns import daxpy, dot_product, stencil5


@pytest.fixture
def m2():
    return parse_config("2c1b2l64r")


def compile_simple(ddg, machine, ii, with_replication=False):
    if machine.is_clustered:
        part = initial_partition(ddg, machine, ii)
    else:
        part = Partition(ddg, {u: 0 for u in ddg.node_ids()}, 1)
    plan = replicate(part, machine, ii) if with_replication else EMPTY_PLAN
    graph = build_placed_graph(ddg, part, machine, plan)
    return schedule(graph, machine, ii)


class TestSimulate:
    def test_cycles_match_paper_model(self, m2):
        kernel = compile_simple(stencil5(), m2, 6)
        result = simulate(kernel, iterations=50)
        assert result.cycles == (50 - 1 + kernel.stage_count) * kernel.ii

    def test_useful_ops_counts_program_work(self, m2):
        ddg = stencil5()
        kernel = compile_simple(ddg, m2, 6)
        result = simulate(kernel, iterations=10)
        assert result.useful_ops == len(ddg) * 10

    def test_useful_ops_invariant_under_replication(self, m2):
        ddg = daxpy()
        plain = compile_simple(ddg, m2, 4)
        replicated = compile_simple(ddg, m2, 2, with_replication=True)
        n = 25
        assert (
            simulate(plain, n).useful_ops
            == simulate(replicated, n).useful_ops
            == len(ddg) * n
        )

    def test_issued_total_includes_overhead(self, m2):
        ddg = daxpy()
        kernel = compile_simple(ddg, m2, 2, with_replication=True)
        result = simulate(kernel, 10)
        overhead = result.issued_replica + result.issued_copies
        assert result.issued_total == result.issued_original + overhead

    def test_zero_iterations(self, m2):
        kernel = compile_simple(daxpy(), m2, 4)
        result = simulate(kernel, 0)
        assert result.cycles == 0 and result.ipc == 0.0

    def test_single_iteration_costs_schedule_length_rounded(self, m2):
        kernel = compile_simple(daxpy(), m2, 4)
        result = simulate(kernel, 1)
        assert result.cycles == kernel.stage_count * kernel.ii

    def test_negative_iterations_rejected(self, m2):
        kernel = compile_simple(daxpy(), m2, 4)
        with pytest.raises(ValueError):
            simulate(kernel, -1)

    def test_stepping_cap(self, m2):
        kernel = compile_simple(dot_product(), m2, 4)
        result = simulate(kernel, 10_000)
        assert result.stepped_iterations <= 3 * kernel.stage_count + 2
        assert result.iterations == 10_000

    def test_recurrence_kernels_step_cleanly(self, m2):
        kernel = compile_simple(dot_product(), m2, 4)
        result = simulate(kernel, 20, max_stepped_iterations=20)
        assert result.stepped_iterations == 20

    def test_ipc_bounded_by_issue_width(self, m2):
        for ddg in (daxpy(), stencil5(), dot_product()):
            kernel = compile_simple(ddg, m2, 8)
            result = simulate(kernel, 100)
            assert 0 < result.ipc <= m2.issue_width

    def test_unified_machine_runs(self):
        m = unified_machine()
        kernel = compile_simple(stencil5(), m, 2)
        result = simulate(kernel, 100)
        assert result.issued_copies == 0
        assert result.ipc > 0
