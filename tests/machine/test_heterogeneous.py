"""Heterogeneous clusters: the paper's noted extension."""

import pytest

from repro.machine.config import ConfigError, heterogeneous_machine
from repro.machine.resources import FuKind
from repro.pipeline.driver import Scheme, compile_loop
from repro.partition.multilevel import initial_partition
from repro.sim.verifier import verify_kernel
from repro.sim.vliw import simulate
from repro.workloads.patterns import stencil5
from repro.workloads.specfp import benchmark_loops


@pytest.fixture
def lopsided():
    """One beefy cluster plus two narrow ones."""
    return heterogeneous_machine(
        cluster_fus=[
            {FuKind.INT: 2, FuKind.FP: 2, FuKind.MEM: 2},
            {FuKind.INT: 1, FuKind.FP: 1, FuKind.MEM: 1},
            {FuKind.INT: 1, FuKind.FP: 1, FuKind.MEM: 1},
        ],
        bus_count=1,
        bus_latency=2,
    )


class TestConstruction:
    def test_per_cluster_counts(self, lopsided):
        assert lopsided.fu_count(0, FuKind.FP) == 2
        assert lopsided.fu_count(1, FuKind.FP) == 1
        assert lopsided.issue_width == 12

    def test_missing_kinds_default_to_one(self):
        m = heterogeneous_machine(
            cluster_fus=[{FuKind.INT: 3}, {}],
            bus_count=1,
            bus_latency=1,
        )
        assert m.fu_count(0, FuKind.FP) == 1
        assert m.fu_count(1, FuKind.INT) == 1

    def test_per_cluster_registers(self):
        m = heterogeneous_machine(
            cluster_fus=[{}, {}],
            bus_count=1,
            bus_latency=1,
            registers=[32, 128],
        )
        assert m.registers(0) == 32
        assert m.registers(1) == 128

    def test_validation(self):
        with pytest.raises(ConfigError):
            heterogeneous_machine([], bus_count=1, bus_latency=1)
        with pytest.raises(ConfigError):
            heterogeneous_machine(
                [{}, {}], bus_count=1, bus_latency=1, registers=[64]
            )


class TestCompilation:
    def test_partitioner_favours_the_big_cluster(self, lopsided):
        loop = benchmark_loops("apsi", limit=1)[0]
        part = initial_partition(loop.ddg, lopsided, ii=8)
        totals = [sum(loads.values()) for loads in part.load_table()]
        assert totals[0] >= max(totals[1:])

    def test_loops_compile_and_verify(self, lopsided):
        for loop in benchmark_loops("hydro2d", limit=3):
            for scheme in (Scheme.BASELINE, Scheme.REPLICATION):
                result = compile_loop(loop.ddg, lopsided, scheme=scheme)
                verify_kernel(result.kernel)

    def test_replication_still_helps(self, lopsided):
        base = compile_loop(stencil5(), lopsided, scheme=Scheme.BASELINE)
        repl = compile_loop(stencil5(), lopsided, scheme=Scheme.REPLICATION)
        assert repl.ii <= base.ii
        assert simulate(repl.kernel, 100).ipc >= simulate(base.kernel, 100).ipc
