"""Operation classes, FU kinds and Table 1 latencies."""

import pytest

from repro.machine.resources import (
    FuKind,
    LATENCIES,
    MEMORY_CLASSES,
    OpClass,
    fu_kind_of,
    latency_of,
)


class TestLatencies:
    def test_table1_memory(self):
        assert latency_of(OpClass.LOAD) == 2
        assert latency_of(OpClass.STORE) == 2

    def test_table1_arith(self):
        assert latency_of(OpClass.INT_ARITH) == 1
        assert latency_of(OpClass.FP_ARITH) == 3

    def test_table1_mul(self):
        assert latency_of(OpClass.INT_MUL) == 2
        assert latency_of(OpClass.FP_MUL) == 6
        assert latency_of(OpClass.FP_ABS) == 6

    def test_table1_div(self):
        assert latency_of(OpClass.INT_DIV) == 6
        assert latency_of(OpClass.FP_DIV) == 18
        assert latency_of(OpClass.FP_SQRT) == 18

    def test_copy_latency_is_machine_dependent(self):
        with pytest.raises(KeyError):
            latency_of(OpClass.COPY)

    def test_every_non_copy_class_has_a_latency(self):
        for op_class in OpClass:
            if op_class is OpClass.COPY:
                continue
            assert LATENCIES[op_class] >= 1


class TestFuKinds:
    def test_memory_ops_use_mem_ports(self):
        assert fu_kind_of(OpClass.LOAD) is FuKind.MEM
        assert fu_kind_of(OpClass.STORE) is FuKind.MEM

    def test_integer_ops_use_int_units(self):
        for op_class in (OpClass.INT_ARITH, OpClass.INT_MUL, OpClass.INT_DIV):
            assert fu_kind_of(op_class) is FuKind.INT

    def test_fp_ops_use_fp_units(self):
        for op_class in (
            OpClass.FP_ARITH,
            OpClass.FP_MUL,
            OpClass.FP_ABS,
            OpClass.FP_DIV,
            OpClass.FP_SQRT,
        ):
            assert fu_kind_of(op_class) is FuKind.FP

    def test_copy_has_no_fu(self):
        with pytest.raises(KeyError):
            fu_kind_of(OpClass.COPY)

    def test_memory_classes(self):
        assert OpClass.LOAD in MEMORY_CLASSES
        assert OpClass.STORE in MEMORY_CLASSES
        assert OpClass.FP_ARITH not in MEMORY_CLASSES
