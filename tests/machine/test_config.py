"""Machine configurations and the wcxbylzr naming scheme."""

import pytest

from repro.machine.config import (
    BusConfig,
    ClusterConfig,
    ConfigError,
    MachineConfig,
    PAPER_CONFIG_NAMES,
    parse_config,
    unified_machine,
)
from repro.machine.resources import FuKind, OpClass


class TestParseConfig:
    def test_4c2b4l64r(self):
        m = parse_config("4c2b4l64r")
        assert m.n_clusters == 4
        assert m.bus.count == 2
        assert m.bus.latency == 4
        assert m.registers(0) == 64
        assert m.name == "4c2b4l64r"

    def test_2_cluster_split(self):
        m = parse_config("2c1b2l64r")
        for kind in FuKind:
            assert m.fu_count(0, kind) == 2
        assert m.issue_width == 12

    def test_4_cluster_split(self):
        m = parse_config("4c1b2l64r")
        for cluster in m.cluster_ids():
            for kind in FuKind:
                assert m.fu_count(cluster, kind) == 1
        assert m.issue_width == 12

    def test_register_field_optional(self):
        m = parse_config("4c1b2l")
        assert m.registers(0) == 64

    def test_register_sweep_values(self):
        assert parse_config("4c1b2l32r").registers(0) == 32
        assert parse_config("4c1b2l128r").registers(0) == 128

    def test_all_paper_configs_parse(self):
        for name in PAPER_CONFIG_NAMES:
            m = parse_config(name)
            assert m.name == name
            assert m.issue_width == 12

    def test_uneven_split_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("3c1b2l64r")

    def test_malformed_names_rejected(self):
        for bad in ("", "4c", "c1b2l", "4x1b2l", "4c1b2l64"):
            with pytest.raises(ConfigError):
                parse_config(bad)

    def test_case_insensitive(self):
        assert parse_config("4C2B4L64R").n_clusters == 4


class TestBusConfig:
    def test_capacity_matches_paper_formula(self):
        # bus_coms = II / bus_lat * nof_buses (integer division).
        bus = BusConfig(count=2, latency=4)
        assert bus.capacity(8) == 4
        assert bus.capacity(7) == 2
        assert bus.capacity(4) == 2
        assert bus.capacity(3) == 0

    def test_single_bus_unit_latency(self):
        bus = BusConfig(count=1, latency=1)
        assert bus.capacity(5) == 5

    def test_no_buses_no_capacity(self):
        assert BusConfig(count=0, latency=1).capacity(100) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            BusConfig(count=-1, latency=2)

    def test_zero_latency_rejected_when_buses_exist(self):
        with pytest.raises(ConfigError):
            BusConfig(count=1, latency=0)


class TestUnifiedMachine:
    def test_single_cluster_with_all_resources(self):
        m = unified_machine()
        assert m.n_clusters == 1
        assert not m.is_clustered
        for kind in FuKind:
            assert m.fu_count(0, kind) == 4
        assert m.issue_width == 12

    def test_no_buses(self):
        assert unified_machine().bus.count == 0

    def test_latency_of_copy_is_bus_latency(self):
        m = parse_config("4c2b4l64r")
        assert m.latency_of(OpClass.COPY) == 4
        assert m.latency_of(OpClass.FP_MUL) == 6


class TestValidation:
    def test_clustered_machine_needs_buses(self):
        cluster = ClusterConfig(
            fu_counts={FuKind.INT: 1, FuKind.FP: 1, FuKind.MEM: 1}, registers=64
        )
        with pytest.raises(ConfigError):
            MachineConfig(
                name="bad",
                clusters=(cluster, cluster),
                bus=BusConfig(count=0, latency=1),
            )

    def test_cluster_needs_positive_registers(self):
        with pytest.raises(ConfigError):
            ClusterConfig(fu_counts={FuKind.INT: 1}, registers=0)

    def test_cluster_needs_positive_units(self):
        with pytest.raises(ConfigError):
            ClusterConfig(fu_counts={FuKind.INT: 0}, registers=64)

    def test_machine_needs_clusters(self):
        with pytest.raises(ConfigError):
            MachineConfig(name="none", clusters=(), bus=BusConfig(0, 1))
