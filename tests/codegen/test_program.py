"""Code generation: flat programs and the software-pipeline factorization."""

import pytest

from repro.codegen.emit import emit_assembly
from repro.codegen.program import flat_program, software_pipeline
from repro.core.plan import EMPTY_PLAN
from repro.core.replicator import replicate
from repro.machine.config import parse_config, unified_machine
from repro.partition.partition import Partition
from repro.partition.multilevel import initial_partition
from repro.schedule.placed import build_placed_graph
from repro.schedule.scheduler import schedule
from repro.workloads.patterns import daxpy, dot_product, stencil5


@pytest.fixture
def m2():
    return parse_config("2c1b2l64r")


def kernel_for(ddg, machine, ii, with_replication=False):
    if machine.is_clustered:
        part = initial_partition(ddg, machine, ii)
    else:
        part = Partition(ddg, {u: 0 for u in ddg.node_ids()}, 1)
    plan = replicate(part, machine, ii) if with_replication else EMPTY_PLAN
    graph = build_placed_graph(ddg, part, machine, plan)
    return schedule(graph, machine, ii)


class TestFlatProgram:
    def test_covers_texec_cycles(self, m2):
        kernel = kernel_for(stencil5(), m2, 6)
        n = 12
        program = flat_program(kernel, n)
        assert program.n_cycles == (n - 1) * kernel.ii + kernel.length

    def test_each_op_issued_once_per_iteration(self, m2):
        kernel = kernel_for(daxpy(), m2, 4)
        n = 7
        program = flat_program(kernel, n)
        assert program.issue_count() == len(kernel.ops) * n

    def test_words_respect_fu_limits(self, m2):
        kernel = kernel_for(stencil5(), m2, 6)
        program = flat_program(kernel, 20)
        for word in program.words:
            usage = {}
            for op in word.ops:
                if op.op_class == "copy":
                    continue
                key = (op.cluster, op.op_class)
                usage[key] = usage.get(key, 0) + 1
            for (cluster, op_class), count in usage.items():
                from repro.machine.resources import OpClass, fu_kind_of

                kind = fu_kind_of(OpClass(op_class))
                assert count <= m2.fu_count(cluster, kind)

    def test_zero_iterations_empty(self, m2):
        kernel = kernel_for(daxpy(), m2, 4)
        assert flat_program(kernel, 0).n_cycles == 0

    def test_negative_rejected(self, m2):
        kernel = kernel_for(daxpy(), m2, 4)
        with pytest.raises(ValueError):
            flat_program(kernel, -2)


class TestSoftwarePipeline:
    @pytest.mark.parametrize("make,ii", [(daxpy, 4), (stencil5, 6), (dot_product, 4)])
    def test_shape(self, m2, make, ii):
        kernel = kernel_for(make(), m2, ii, with_replication=True)
        loop = software_pipeline(kernel)
        assert len(loop.kernel) == kernel.ii
        assert len(loop.prolog) == (kernel.stage_count - 1) * kernel.ii
        assert loop.stage_count == kernel.stage_count

    def test_kernel_contains_every_op_once(self, m2):
        kernel = kernel_for(stencil5(), m2, 6)
        loop = software_pipeline(kernel)
        names = [op.name for word in loop.kernel for op in word.ops]
        assert sorted(names) == sorted(
            op.instance.name for op in kernel.ops.values()
        )

    def test_stitching_reproduces_flat_program(self, m2):
        """prolog + kernel*(N-SC+1) + epilog == flat(N), word for word."""
        kernel = kernel_for(daxpy(), m2, 4, with_replication=True)
        loop = software_pipeline(kernel)
        sc, ii = kernel.stage_count, kernel.ii
        n = sc + 3
        flat = flat_program(kernel, n)
        fill = (sc - 1) * ii

        def key(ops):
            return sorted((o.name, o.cluster, o.iteration) for o in ops)

        for cycle, word in enumerate(flat.words):
            if cycle < fill:
                expected = loop.prolog[cycle].ops
                assert key(word.ops) == key(expected), f"prolog cycle {cycle}"
            elif cycle < n * ii:
                window, row = divmod(cycle - fill, ii)
                # A kernel op tagged with stage s belongs to the
                # iteration that entered the pipeline s windows ago:
                # i = (SC - 1) - s + window.
                expected = [
                    (o.name, o.cluster, (sc - 1) - o.iteration + window)
                    for o in loop.kernel[row].ops
                ]
                assert key(word.ops) == sorted(expected), f"kernel cycle {cycle}"
            else:
                shift = n - sc
                expected = [
                    (o.name, o.cluster, o.iteration + shift)
                    for o in loop.epilog[cycle - n * ii].ops
                ]
                assert key(word.ops) == sorted(expected), f"epilog cycle {cycle}"

    def test_code_words_accounting(self, m2):
        kernel = kernel_for(stencil5(), m2, 6)
        loop = software_pipeline(kernel)
        assert loop.code_words == (
            len(loop.prolog) + len(loop.kernel) + len(loop.epilog)
        )
        assert loop.min_iterations() == kernel.stage_count


class TestEmit:
    def test_assembly_sections(self, m2):
        kernel = kernel_for(daxpy(), m2, 4, with_replication=True)
        text = emit_assembly(software_pipeline(kernel), name="daxpy")
        assert "prolog:" in text
        assert "kernel:" in text
        assert "epilog:" in text
        assert "II=4" in text

    def test_bus_annotation(self, m2):
        kernel = kernel_for(daxpy(), m2, 4)
        text = emit_assembly(software_pipeline(kernel))
        if kernel.n_copy_ops():
            assert "bus" in text

    def test_unified_machine_program(self):
        m = unified_machine()
        kernel = kernel_for(stencil5(), m, 2)
        text = emit_assembly(software_pipeline(kernel), name="stencil5")
        assert "copy" not in text
